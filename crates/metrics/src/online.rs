//! Streaming moment estimators (Welford's algorithm) and the online
//! building blocks of the live monitor: exponentially weighted moments
//! ([`Ewma`]), sliding-window quantiles ([`WindowedQuantiles`]), and a
//! CUSUM change-point detector ([`Cusum`]).

use std::collections::VecDeque;

use crate::quartiles::quantile_sorted;

/// Single-pass mean/variance/min/max accumulator.
///
/// Uses Welford's update, which is numerically stable for long streams —
/// important because impact experiments can collect millions of latency
/// samples in nanoseconds, where naive sum-of-squares catastrophically
/// cancels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every item of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Builds an accumulator from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = OnlineStats::new();
        s.extend(xs.iter().copied());
        s
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n; 0 when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (divides by n−1; 0 when n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Rebuilds an accumulator from its raw state — the exact counterpart
    /// of [`OnlineStats::m2`] and the other accessors, so a serialized
    /// accumulator round-trips bit-for-bit (crash-safe sweep journals
    /// depend on this).
    pub fn from_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        if n == 0 {
            return OnlineStats::new();
        }
        OnlineStats {
            n,
            mean,
            m2,
            min,
            max,
        }
    }

    /// The raw second central moment `Σ(x−µ)²` — the internal Welford
    /// state, exposed for bit-exact serialization (pair with
    /// [`OnlineStats::from_parts`]).
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exponentially weighted moving average of mean and variance.
///
/// Unlike [`OnlineStats`], which weighs the whole history equally, the
/// EWMA forgets: with smoothing factor `alpha` the weight of a sample
/// decays as `(1−alpha)^age`, so the estimate tracks the *current*
/// interference regime on a switch rather than the lifetime average.
/// The variance recursion is the standard EWMV companion
/// (`var ← (1−α)·(var + α·(x−µ)²)`), which is exact for the same decay
/// weights.
///
/// The first observation initializes the mean directly (no bias toward
/// zero), which also guarantees the estimate stays inside the observed
/// `[min, max]` envelope — a convexity property the property tests pin.
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    alpha: f64,
    mean: f64,
    var: f64,
    n: u64,
    min: f64,
    max: f64,
}

impl Ewma {
    /// An empty estimator with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics when `alpha` is outside `(0, 1]` or not finite — a
    /// mis-tuned detector is a construction bug, not a data condition.
    pub fn new(alpha: f64) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "EWMA smoothing factor must lie in (0, 1], got {alpha}"
        );
        Ewma {
            alpha,
            mean: 0.0,
            var: 0.0,
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The smoothing factor this estimator was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        if self.n == 1 {
            self.mean = x;
            self.var = 0.0;
        } else {
            let delta = x - self.mean;
            let incr = self.alpha * delta;
            self.mean += incr;
            self.var = (1.0 - self.alpha) * (self.var + delta * incr);
        }
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every item of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Exponentially weighted mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Exponentially weighted variance (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.var.max(0.0)
        }
    }

    /// Exponentially weighted standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation ever seen (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation ever seen (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Sliding-window quantile estimator over the last `capacity` samples.
///
/// Keeps the raw window (probe windows are small — hundreds of samples,
/// not millions) and answers quantile queries with the same type-7
/// interpolated estimator as [`crate::quantile`], so a windowed median
/// agrees bit-for-bit with the offline summary of the same samples.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedQuantiles {
    capacity: usize,
    window: VecDeque<f64>,
}

impl WindowedQuantiles {
    /// An empty window holding at most `capacity` samples.
    ///
    /// # Panics
    /// Panics when `capacity` is zero — a window that can hold nothing
    /// can answer nothing.
    pub fn new(capacity: usize) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(capacity > 0, "window capacity must be positive");
        WindowedQuantiles {
            capacity,
            window: VecDeque::with_capacity(capacity),
        }
    }

    /// Adds one observation, evicting the oldest when full. NaN is
    /// ignored (it has no order, so it cannot participate in a quantile).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
    }

    /// Adds every item of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Number of samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window currently holds no samples.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The maximum number of samples the window retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained samples, oldest first (the raw sliding window — e.g.
    /// to collapse the recent past into a full latency profile).
    pub fn samples(&self) -> impl Iterator<Item = f64> + '_ {
        self.window.iter().copied()
    }

    /// Interpolated quantile of the current window (`None` when empty or
    /// when `q` is outside `[0, 1]`).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        quantile_sorted(&sorted, q).ok()
    }

    /// Median of the current window (`None` when empty).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

/// Which direction a detected change points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shift {
    /// The stream mean rose above the reference (interference arrived).
    Up,
    /// The stream mean fell below the reference (interference departed).
    Down,
}

/// Two-sided CUSUM change-point detector (Page's test).
///
/// Observations are standardized against a reference mean/σ (the idle
/// calibration of a probe stream), then the classic pair of cumulative
/// sums accumulates evidence of a persistent shift:
///
/// ```text
/// s⁺ ← max(0, s⁺ + z − k)      s⁻ ← max(0, s⁻ − z − k)
/// ```
///
/// where `k` is the slack (in σ units) that absorbs in-regime noise and
/// `h` is the decision threshold. A sum crossing `h` raises an alarm,
/// resets both sums, and re-references the detector at the alarming
/// observation — the freshest evidence of the new plateau — so the
/// *next* regime change is detected relative to it.
#[derive(Debug, Clone, PartialEq)]
pub struct Cusum {
    k: f64,
    h: f64,
    ref_mean: f64,
    ref_sd: f64,
    s_hi: f64,
    s_lo: f64,
}

impl Cusum {
    /// A detector with slack `k` and threshold `h`, both in σ units.
    ///
    /// # Panics
    /// Panics when `k` is negative or `h` is not positive.
    pub fn new(k: f64, h: f64) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(
            k >= 0.0 && k.is_finite(),
            "CUSUM slack must be ≥ 0, got {k}"
        );
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(
            h > 0.0 && h.is_finite(),
            "CUSUM threshold must be > 0, got {h}"
        );
        Cusum {
            k,
            h,
            ref_mean: 0.0,
            ref_sd: 1.0,
            s_hi: 0.0,
            s_lo: 0.0,
        }
    }

    /// Sets the in-control reference distribution (idle calibration).
    /// A σ of zero or below is clamped to a tiny positive floor so a
    /// perfectly deterministic idle stream still standardizes.
    pub fn set_reference(&mut self, mean: f64, sd: f64) {
        self.ref_mean = mean;
        self.ref_sd = sd.max(1e-12);
        self.s_hi = 0.0;
        self.s_lo = 0.0;
    }

    /// The current reference mean.
    pub fn reference_mean(&self) -> f64 {
        self.ref_mean
    }

    /// The current pair of cumulative sums `(s⁺, s⁻)`.
    pub fn scores(&self) -> (f64, f64) {
        (self.s_hi, self.s_lo)
    }

    /// Feeds one observation; returns the direction if this observation
    /// pushed a cumulative sum over the threshold.
    pub fn push(&mut self, x: f64) -> Option<Shift> {
        let z = (x - self.ref_mean) / self.ref_sd;
        self.s_hi = (self.s_hi + z - self.k).max(0.0);
        self.s_lo = (self.s_lo - z - self.k).max(0.0);
        if self.s_hi > self.h {
            self.set_reference(x, self.ref_sd);
            Some(Shift::Up)
        } else if self.s_lo > self.h {
            self.set_reference(x, self.ref_sd);
            Some(Shift::Down)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_well_defined() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_values() {
        let s = OnlineStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let s = OnlineStats::from_slice(&[3.5]);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.mean(), 3.5);
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a = OnlineStats::from_slice(&[1.0, 2.0, 3.0]);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert!((e.mean() - before.mean()).abs() < 1e-12);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Welford must survive a huge common offset where naive sum of
        // squares loses all precision.
        let base = 1e12;
        let s = OnlineStats::from_slice(&[base + 1.0, base + 2.0, base + 3.0]);
        assert!((s.mean() - (base + 2.0)).abs() < 1e-3);
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-3);
    }

    #[test]
    fn ewma_first_sample_sets_the_mean() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.mean(), 0.0);
        e.push(7.5);
        assert_eq!(e.mean(), 7.5);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.min(), Some(7.5));
        assert_eq!(e.max(), Some(7.5));
    }

    #[test]
    fn ewma_tracks_a_level_shift_faster_than_welford() {
        let mut e = Ewma::new(0.2);
        let mut w = OnlineStats::new();
        for _ in 0..100 {
            e.push(1.0);
            w.push(1.0);
        }
        for _ in 0..30 {
            e.push(5.0);
            w.push(5.0);
        }
        // After 30 samples at the new level the EWMA has essentially
        // converged while the all-history mean still lags far behind.
        assert!((e.mean() - 5.0).abs() < 0.02, "ewma {:.3}", e.mean());
        assert!(w.mean() < 2.5, "welford {:.3}", w.mean());
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn windowed_quantiles_evict_oldest() {
        let mut wq = WindowedQuantiles::new(4);
        wq.extend([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(wq.median(), Some(25.0));
        wq.push(50.0); // evicts 10.0 → window is {20,30,40,50}
        assert_eq!(wq.len(), 4);
        assert_eq!(wq.median(), Some(35.0));
        assert_eq!(wq.quantile(0.0), Some(20.0));
        assert_eq!(wq.quantile(1.0), Some(50.0));
    }

    #[test]
    fn windowed_quantiles_ignore_nan_and_empty() {
        let mut wq = WindowedQuantiles::new(8);
        assert!(wq.is_empty());
        assert_eq!(wq.median(), None);
        wq.push(f64::NAN);
        assert!(wq.is_empty(), "NaN must not enter the window");
        wq.push(3.0);
        assert_eq!(wq.quantile(1.5), None, "fraction out of range");
        assert_eq!(wq.median(), Some(3.0));
    }

    #[test]
    fn cusum_flags_an_upward_shift_and_rearms() {
        let mut c = Cusum::new(0.5, 5.0);
        c.set_reference(10.0, 1.0);
        // In-regime noise around the reference raises no alarm.
        for x in [10.2, 9.8, 10.1, 9.9, 10.0] {
            assert_eq!(c.push(x), None);
        }
        // A persistent +3σ shift must alarm within a handful of samples.
        let mut hit = None;
        for (i, _) in (0..20).enumerate() {
            if c.push(13.0).is_some() {
                hit = Some(i);
                break;
            }
        }
        let lag = hit.expect("a 3σ shift must be detected");
        assert!(lag < 5, "detection lag {lag} too slow for a 3σ shift");
        // After the alarm the detector re-references near the new level,
        // so staying there is the new normal...
        for _ in 0..20 {
            assert_eq!(c.push(13.0), None);
        }
        // ...and dropping back to the old level is a Down shift.
        let mut down = None;
        for _ in 0..20 {
            if let Some(s) = c.push(10.0) {
                down = Some(s);
                break;
            }
        }
        assert_eq!(down, Some(Shift::Down));
    }

    proptest! {
        /// The EWMA mean is a convex combination of observations, so it
        /// can never escape the observed [min, max] envelope.
        #[test]
        fn prop_ewma_bounded_by_observed_extremes(
            xs in proptest::collection::vec(-1e9f64..1e9, 1..200),
            alpha in 1e-3f64..1.0,
        ) {
            let mut e = Ewma::new(alpha);
            e.extend(xs.iter().copied());
            let lo = e.min().unwrap();
            let hi = e.max().unwrap();
            prop_assert!(e.mean() >= lo - 1e-6);
            prop_assert!(e.mean() <= hi + 1e-6);
            prop_assert!(e.variance() >= 0.0);
        }

        /// Windowed quantiles are monotone in the fraction.
        #[test]
        fn prop_windowed_quantile_monotone(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
            cap in 1usize..64,
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let mut wq = WindowedQuantiles::new(cap);
            wq.extend(xs.iter().copied());
            let a = wq.quantile(lo).unwrap();
            let b = wq.quantile(hi).unwrap();
            prop_assert!(a <= b + 1e-9, "q({lo})={a} must be ≤ q({hi})={b}");
        }

        /// `extend` must be exactly the push loop, for every estimator —
        /// the sweep engine feeds windows sample-by-sample while the
        /// journal replays them in batches, and both must agree.
        #[test]
        fn prop_extend_equals_push_loop(
            xs in proptest::collection::vec(-1e6f64..1e6, 0..100),
        ) {
            let mut w1 = OnlineStats::new();
            w1.extend(xs.iter().copied());
            let mut w2 = OnlineStats::new();
            for &x in &xs { w2.push(x); }
            prop_assert_eq!(w1, w2);

            let mut e1 = Ewma::new(0.25);
            e1.extend(xs.iter().copied());
            let mut e2 = Ewma::new(0.25);
            for &x in &xs { e2.push(x); }
            prop_assert_eq!(e1, e2);

            let mut q1 = WindowedQuantiles::new(16);
            q1.extend(xs.iter().copied());
            let mut q2 = WindowedQuantiles::new(16);
            for &x in &xs { q2.push(x); }
            prop_assert_eq!(q1, q2);
        }

        /// Merging two accumulators equals accumulating the concatenation.
        #[test]
        fn prop_merge_equals_concat(
            a in proptest::collection::vec(-1e6f64..1e6, 0..50),
            b in proptest::collection::vec(-1e6f64..1e6, 0..50),
        ) {
            let mut left = OnlineStats::from_slice(&a);
            left.merge(&OnlineStats::from_slice(&b));
            let mut all = a.clone();
            all.extend_from_slice(&b);
            let full = OnlineStats::from_slice(&all);
            prop_assert_eq!(left.count(), full.count());
            if full.count() > 0 {
                prop_assert!((left.mean() - full.mean()).abs() < 1e-6);
                prop_assert!((left.variance() - full.variance()).abs() < 1e-3);
            }
        }

        /// Variance is never negative and min ≤ mean ≤ max.
        #[test]
        fn prop_invariants(xs in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
            let s = OnlineStats::from_slice(&xs);
            prop_assert!(s.variance() >= 0.0);
            prop_assert!(s.min().unwrap() <= s.mean() + 1e-6);
            prop_assert!(s.mean() <= s.max().unwrap() + 1e-6);
        }
    }
}
