//! Fixed-bin histograms and distribution-comparison metrics.
//!
//! The paper's Fig. 3 presents packet-latency distributions as percentage
//! frequencies over fixed latency bins, and its PDFLT model compares two
//! latency distributions by the overlap integral `∫ f·g` (§IV-A.3). This
//! module provides both.

/// A histogram over `[lo, hi)` with equal-width bins plus an overflow bin
/// for samples at or above `hi` (the paper's latency plots likewise lump
/// everything past the last tick).
///
/// ```
/// use anp_metrics::Histogram;
///
/// let mut h = Histogram::latency_us(); // Fig. 3 binning: 0–10 µs, 0.5 µs bins
/// h.extend([1.2, 1.3, 1.2, 2.6, 11.5]);
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.overflow(), 1);
/// // 3 of 5 samples fall in the 1.0–1.5 µs bin (center 1.25):
/// assert!((h.frequency(2) - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo` or the bounds are non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(bins > 0, "need at least one bin");
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "bad bounds");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
            total: 0,
        }
    }

    /// The binning used for packet transmission times in the paper's
    /// Fig. 3: 0.5 µs bins from 0 to 10 µs (values in microseconds).
    pub fn latency_us() -> Self {
        Histogram::new(0.0, 10.0, 20)
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds every item of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Builds a histogram of a slice with the given bounds/bins.
    pub fn of(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        let mut h = Histogram::new(lo, hi, bins);
        h.extend(xs.iter().copied());
        h
    }

    /// Rebuilds a histogram from its raw state (bounds, per-bin counts,
    /// and the out-of-range tallies) — the counterpart of the accessors,
    /// so a serialized histogram round-trips exactly (crash-safe sweep
    /// journals depend on this). The total is recomputed; it always equals
    /// binned + underflow + overflow by construction.
    ///
    /// # Panics
    /// Panics on the same bad bounds as [`Histogram::new`].
    pub fn from_parts(lo: f64, hi: f64, counts: Vec<u64>, underflow: u64, overflow: u64) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(!counts.is_empty(), "need at least one bin");
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "bad bounds");
        let total = counts.iter().sum::<u64>() + underflow + overflow;
        Histogram {
            lo,
            hi,
            counts,
            overflow,
            underflow,
            total,
        }
    }

    /// Lower bound of the binned range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper (exclusive) bound of the binned range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of regular bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Raw count of bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total samples pushed (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Samples below the lower bound.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Fraction of samples in bin `i` (0 when empty).
    pub fn frequency(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// All bin frequencies, in order. Includes neither underflow nor
    /// overflow; the vector sums to ≤ 1.
    pub fn frequencies(&self) -> Vec<f64> {
        (0..self.bins()).map(|i| self.frequency(i)).collect()
    }

    /// The discretized probability *density* per bin: frequency divided by
    /// bin width, so that `Σ density·width ≤ 1` with equality when nothing
    /// over/underflowed.
    pub fn densities(&self) -> Vec<f64> {
        let w = self.bin_width();
        self.frequencies().iter().map(|f| f / w).collect()
    }

    /// The paper's PDFLT similarity: the discretized overlap integral
    /// `∫ f·g ≈ Σ_i f_i · g_i · width` over the common bins.
    ///
    /// Larger values mean more similar distributions. Both histograms must
    /// share the same binning.
    ///
    /// # Panics
    /// Panics if the two histograms have different bounds or bin counts.
    pub fn pdf_product_integral(&self, other: &Histogram) -> f64 {
        self.assert_compatible(other);
        let w = self.bin_width();
        self.densities()
            .iter()
            .zip(other.densities())
            .map(|(a, b)| a * b * w)
            .sum()
    }

    /// L1 distance between the two frequency vectors (total variation ×2).
    pub fn l1_distance(&self, other: &Histogram) -> f64 {
        self.assert_compatible(other);
        self.frequencies()
            .iter()
            .zip(other.frequencies())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            + (self.overflow_frequency() - other.overflow_frequency()).abs()
            + (self.underflow_frequency() - other.underflow_frequency()).abs()
    }

    /// Kolmogorov–Smirnov statistic over the binned CDFs.
    pub fn ks_distance(&self, other: &Histogram) -> f64 {
        self.assert_compatible(other);
        let mut ca = self.underflow_frequency();
        let mut cb = other.underflow_frequency();
        let mut d: f64 = (ca - cb).abs();
        for i in 0..self.bins() {
            ca += self.frequency(i);
            cb += other.frequency(i);
            d = d.max((ca - cb).abs());
        }
        d
    }

    fn overflow_frequency(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflow as f64 / self.total as f64
        }
    }

    fn underflow_frequency(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.underflow as f64 / self.total as f64
        }
    }

    fn assert_compatible(&self, other: &Histogram) {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins() == other.bins(),
            "histograms have incompatible binning"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binning_is_half_open() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(0.0); // first bin
        h.push(0.999); // still first bin
        h.push(1.0); // second bin
        h.push(9.999); // last bin
        h.push(10.0); // overflow
        h.push(-0.1); // underflow
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn latency_us_matches_fig3_axis() {
        let h = Histogram::latency_us();
        assert_eq!(h.bins(), 20);
        assert!((h.bin_width() - 0.5).abs() < 1e-12);
        assert!((h.bin_center(2) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn frequencies_sum_to_one_without_outliers() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64 + 0.5).collect();
        let h = Histogram::of(&xs, 0.0, 10.0, 10);
        let sum: f64 = h.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for i in 0..10 {
            assert!((h.frequency(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn identical_distributions_maximize_overlap() {
        let a: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let h1 = Histogram::of(&a, 0.0, 10.0, 20);
        let h2 = Histogram::of(&a, 0.0, 10.0, 20);
        let shifted: Vec<f64> = a.iter().map(|x| x + 3.0).collect();
        let h3 = Histogram::of(&shifted, 0.0, 10.0, 20);
        let self_overlap = h1.pdf_product_integral(&h2);
        let cross_overlap = h1.pdf_product_integral(&h3);
        assert!(self_overlap > cross_overlap);
    }

    #[test]
    fn disjoint_distributions_have_zero_overlap() {
        let a = Histogram::of(&[1.0, 1.2, 1.4], 0.0, 10.0, 10);
        let b = Histogram::of(&[8.0, 8.2, 8.4], 0.0, 10.0, 10);
        assert_eq!(a.pdf_product_integral(&b), 0.0);
        assert!((a.ks_distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_of_identical_is_zero() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 7.0).collect();
        let a = Histogram::of(&xs, 0.0, 10.0, 20);
        assert_eq!(a.ks_distance(&a.clone()), 0.0);
        assert_eq!(a.l1_distance(&a.clone()), 0.0);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn incompatible_binning_panics() {
        let a = Histogram::new(0.0, 10.0, 10);
        let b = Histogram::new(0.0, 10.0, 20);
        let _ = a.pdf_product_integral(&b);
    }

    proptest! {
        /// Every pushed sample lands somewhere: bins + overflow + underflow
        /// equals total.
        #[test]
        fn prop_mass_conservation(xs in proptest::collection::vec(-20.0f64..20.0, 0..300)) {
            let h = Histogram::of(&xs, 0.0, 10.0, 13);
            let binned: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
            prop_assert_eq!(binned + h.overflow() + h.underflow(), xs.len() as u64);
            prop_assert_eq!(h.total(), xs.len() as u64);
        }

        /// The overlap integral is symmetric and non-negative.
        #[test]
        fn prop_overlap_symmetric(
            a in proptest::collection::vec(0.0f64..10.0, 1..100),
            b in proptest::collection::vec(0.0f64..10.0, 1..100),
        ) {
            let ha = Histogram::of(&a, 0.0, 10.0, 16);
            let hb = Histogram::of(&b, 0.0, 10.0, 16);
            let ab = ha.pdf_product_integral(&hb);
            let ba = hb.pdf_product_integral(&ha);
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!(ab >= 0.0);
        }

        /// KS distance is a bounded pseudo-metric: 0 ≤ d ≤ 1, symmetric.
        #[test]
        fn prop_ks_bounds(
            a in proptest::collection::vec(-5.0f64..15.0, 1..100),
            b in proptest::collection::vec(-5.0f64..15.0, 1..100),
        ) {
            let ha = Histogram::of(&a, 0.0, 10.0, 16);
            let hb = Histogram::of(&b, 0.0, 10.0, 16);
            let d = ha.ks_distance(&hb);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
            prop_assert!((d - hb.ks_distance(&ha)).abs() < 1e-12);
        }
    }
}
