//! The `Program` trait: the code a simulated rank runs.

use anp_simnet::SimTime;

use crate::op::Op;

/// Per-callback context handed to a program.
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    /// Current simulated time on this rank.
    pub now: SimTime,
}

/// The behaviour of one rank, expressed as a pull-based operation stream.
///
/// The world calls [`Program::next_op`] whenever the rank is ready to issue
/// its next operation — at start, after a compute/sleep span elapses, and
/// after a blocking wait satisfies. Programs are plain state machines; all
/// placement knowledge (rank id, job size, node layout) is baked in at
/// construction by the workload builders.
pub trait Program {
    /// Produces the rank's next operation.
    fn next_op(&mut self, ctx: &Ctx) -> Op;

    /// A short label for tracing and error messages.
    fn name(&self) -> &str {
        "program"
    }
}

/// A program that replays a fixed list of operations, then stops.
/// Useful for tests and micro-experiments.
pub struct Scripted {
    ops: std::vec::IntoIter<Op>,
    label: String,
}

impl Scripted {
    /// Builds a scripted program from an op list. A final [`Op::Stop`] is
    /// appended implicitly if absent.
    pub fn new(ops: Vec<Op>) -> Self {
        Scripted {
            ops: ops.into_iter(),
            label: "scripted".to_owned(),
        }
    }

    /// Sets the trace label.
    pub fn named(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl Program for Scripted {
    fn next_op(&mut self, _ctx: &Ctx) -> Op {
        self.ops.next().unwrap_or(Op::Stop)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// A program that runs `body` forever, restarting the op list each time it
/// drains. Useful for interference benchmarks that loop until the horizon.
pub struct Looping {
    body: Vec<Op>,
    pos: usize,
    label: String,
}

impl Looping {
    /// Builds a looping program from one iteration's op list.
    ///
    /// # Panics
    /// Panics if `body` is empty or contains [`Op::Stop`] (a looping
    /// program never stops).
    pub fn new(body: Vec<Op>) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(!body.is_empty(), "looping body must not be empty");
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(
            !body.iter().any(|op| matches!(op, Op::Stop)),
            "looping body must not contain Stop"
        );
        Looping {
            body,
            pos: 0,
            label: "looping".to_owned(),
        }
    }

    /// Sets the trace label.
    pub fn named(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl Program for Looping {
    fn next_op(&mut self, _ctx: &Ctx) -> Op {
        let op = self.body[self.pos];
        self.pos = (self.pos + 1) % self.body.len();
        op
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simnet::SimDuration;

    fn ctx() -> Ctx {
        Ctx { now: SimTime::ZERO }
    }

    #[test]
    fn scripted_replays_then_stops() {
        let mut p = Scripted::new(vec![Op::Compute(SimDuration::from_nanos(5)), Op::WaitAll]);
        assert_eq!(p.next_op(&ctx()), Op::Compute(SimDuration::from_nanos(5)));
        assert_eq!(p.next_op(&ctx()), Op::WaitAll);
        assert_eq!(p.next_op(&ctx()), Op::Stop);
        assert_eq!(p.next_op(&ctx()), Op::Stop, "stop is sticky");
    }

    #[test]
    fn looping_wraps_around() {
        let mut p = Looping::new(vec![
            Op::Compute(SimDuration::from_nanos(1)),
            Op::Sleep(SimDuration::from_nanos(2)),
        ]);
        for _ in 0..3 {
            assert_eq!(p.next_op(&ctx()), Op::Compute(SimDuration::from_nanos(1)));
            assert_eq!(p.next_op(&ctx()), Op::Sleep(SimDuration::from_nanos(2)));
        }
    }

    #[test]
    #[should_panic(expected = "must not contain Stop")]
    fn looping_rejects_stop() {
        Looping::new(vec![Op::Stop]);
    }

    #[test]
    fn labels_propagate() {
        let p = Scripted::new(vec![]).named("probe");
        assert_eq!(p.name(), "probe");
        let l = Looping::new(vec![Op::WaitAll]).named("noise");
        assert_eq!(l.name(), "noise");
    }
}
