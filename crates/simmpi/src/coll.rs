//! Collective lowering: barrier / allreduce / alltoall expanded into
//! point-to-point operation sequences.
//!
//! Collectives are not magic in this simulator — they are rewritten into
//! the same `Isend`/`Irecv`/`WaitAll` alphabet ranks already execute, so
//! their packets load the switch exactly like application point-to-point
//! traffic. Allreduce (and barrier, which is an 8-byte allreduce) uses the
//! classic recursive-doubling algorithm with the MPICH-style fold for
//! non-power-of-two rank counts; alltoall uses windowed pairwise exchange.

use crate::op::{Op, Src};

/// How many pairwise-exchange rounds an alltoall keeps in flight at once.
/// One round in flight makes the exchange latency-chained, like the
/// synchronous pairwise algorithms real MPI stacks pick for small
/// payloads — which is exactly the regime the paper's FFTW/VPFFT
/// sensitivity comes from.
pub const ALLTOALL_WINDOW: usize = 1;

/// Expands an allreduce of `bytes` for job-local rank `local` out of `n`.
///
/// `tag_base` must provide two consecutive free tags (`tag_base`,
/// `tag_base + 1`).
///
/// ```
/// use anp_simmpi::coll::expand_allreduce;
/// use anp_simmpi::Op;
///
/// // Rank 0 of a 4-rank job: pure recursive doubling, log2(4) = 2 rounds.
/// let ops = expand_allreduce(0, 4, 1024, 100);
/// let sends = ops.iter().filter(|o| matches!(o, Op::Isend { .. })).count();
/// assert_eq!(sends, 2);
/// // A single-rank job needs no communication at all.
/// assert!(expand_allreduce(0, 1, 1024, 100).is_empty());
/// ```
pub fn expand_allreduce(local: u32, n: u32, bytes: u64, tag_base: u32) -> Vec<Op> {
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(local < n, "rank {local} out of job of size {n}");
    if n == 1 {
        return Vec::new();
    }
    let t_main = tag_base;
    let t_post = tag_base + 1;
    let p2 = prev_power_of_two(n);
    let rem = n - p2;
    let mut ops = Vec::new();

    // Fold phase: the first 2*rem ranks collapse pairwise so that a
    // power-of-two set remains active.
    let new_id: Option<u32> = if local < 2 * rem {
        if local % 2 == 1 {
            // Odd ranks hand their contribution to the left neighbour and
            // sit out; they get the result back in the unfold phase.
            ops.push(Op::Isend {
                dst: local - 1,
                bytes,
                tag: t_main,
            });
            ops.push(Op::WaitAll);
            ops.push(Op::Irecv {
                src: Src::Rank(local - 1),
                tag: t_post,
            });
            ops.push(Op::WaitAll);
            None
        } else {
            ops.push(Op::Irecv {
                src: Src::Rank(local + 1),
                tag: t_main,
            });
            ops.push(Op::WaitAll);
            Some(local / 2)
        }
    } else {
        Some(local - rem)
    };

    // Recursive doubling among the p2 active ranks.
    if let Some(id) = new_id {
        let mut bit = 1u32;
        while bit < p2 {
            let partner_id = id ^ bit;
            let partner_local = if partner_id < rem {
                2 * partner_id
            } else {
                partner_id + rem
            };
            ops.push(Op::Irecv {
                src: Src::Rank(partner_local),
                tag: t_main,
            });
            ops.push(Op::Isend {
                dst: partner_local,
                bytes,
                tag: t_main,
            });
            ops.push(Op::WaitAll);
            bit <<= 1;
        }
        // Unfold phase: hand the result back to the folded-out neighbour.
        if local < 2 * rem {
            ops.push(Op::Isend {
                dst: local + 1,
                bytes,
                tag: t_post,
            });
            ops.push(Op::WaitAll);
        }
    }
    ops
}

/// Expands a barrier: an allreduce of a token-sized payload.
pub fn expand_barrier(local: u32, n: u32, tag_base: u32) -> Vec<Op> {
    expand_allreduce(local, n, 8, tag_base)
}

/// Expands a personalized all-to-all: `n - 1` pairwise-exchange rounds
/// (round `r` sends to `local + r`, receives from `local - r`, mod `n`),
/// windowed [`ALLTOALL_WINDOW`] rounds at a time. The self-"exchange" is a
/// local copy and costs nothing on the network.
pub fn expand_alltoall(local: u32, n: u32, bytes_per_pair: u64, tag_base: u32) -> Vec<Op> {
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(local < n, "rank {local} out of job of size {n}");
    if n == 1 {
        return Vec::new();
    }
    let tag = tag_base;
    let mut ops = Vec::new();
    let rounds: Vec<u32> = (1..n).collect();
    for window in rounds.chunks(ALLTOALL_WINDOW) {
        for &r in window {
            let dst = (local + r) % n;
            let src = (local + n - r) % n;
            ops.push(Op::Irecv {
                src: Src::Rank(src),
                tag,
            });
            ops.push(Op::Isend {
                dst,
                bytes: bytes_per_pair,
                tag,
            });
        }
        ops.push(Op::WaitAll);
    }
    ops
}

/// Expands a binomial-tree broadcast from `root` for job-local rank
/// `local` out of `n`.
///
/// ```
/// use anp_simmpi::coll::expand_bcast;
/// use anp_simmpi::Op;
///
/// // The root of an 8-rank broadcast only sends: log2(8) = 3 messages.
/// let ops = expand_bcast(0, 0, 8, 4096, 50);
/// let sends = ops.iter().filter(|o| matches!(o, Op::Isend { .. })).count();
/// assert_eq!(sends, 3);
/// ```
pub fn expand_bcast(local: u32, root: u32, n: u32, bytes: u64, tag: u32) -> Vec<Op> {
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(local < n && root < n, "rank/root out of job of size {n}");
    if n == 1 {
        return Vec::new();
    }
    let vrank = (local + n - root) % n;
    let unvrank = |v: u32| (v + root) % n;
    let mut ops = Vec::new();
    // Receive phase: a non-root rank receives from the parent given by
    // its lowest set bit position in the binomial tree.
    let mut mask = 1u32;
    while mask < n {
        if vrank & mask != 0 {
            ops.push(Op::Irecv {
                src: Src::Rank(unvrank(vrank - mask)),
                tag,
            });
            ops.push(Op::WaitAll);
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children below the received bit (the root
    // exits the loop with mask ≥ n and sends to every power-of-two child).
    let mut sends = 0;
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < n {
            ops.push(Op::Isend {
                dst: unvrank(vrank + mask),
                bytes,
                tag,
            });
            sends += 1;
        }
        mask >>= 1;
    }
    if sends > 0 {
        ops.push(Op::WaitAll);
    }
    ops
}

/// Expands a binomial-tree reduction to `root` for job-local rank `local`
/// out of `n`. The mirror image of [`expand_bcast`]: leaves send first,
/// interior ranks combine children before forwarding.
pub fn expand_reduce(local: u32, root: u32, n: u32, bytes: u64, tag: u32) -> Vec<Op> {
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(local < n && root < n, "rank/root out of job of size {n}");
    if n == 1 {
        return Vec::new();
    }
    let vrank = (local + n - root) % n;
    let unvrank = |v: u32| (v + root) % n;
    let mut ops = Vec::new();
    let mut mask = 1u32;
    while mask < n {
        if vrank & mask == 0 {
            let partner = vrank | mask;
            if partner < n {
                // Receive a child's partial result; the combine must
                // complete before the next level, hence the round wait.
                ops.push(Op::Irecv {
                    src: Src::Rank(unvrank(partner)),
                    tag,
                });
                ops.push(Op::WaitAll);
            }
        } else {
            ops.push(Op::Isend {
                dst: unvrank(vrank - mask),
                bytes,
                tag,
            });
            ops.push(Op::WaitAll);
            break;
        }
        mask <<= 1;
    }
    ops
}

/// Expands a ring allgather for job-local rank `local` out of `n`:
/// `n − 1` steps, each forwarding one rank's block to the successor while
/// receiving another from the predecessor.
pub fn expand_allgather(local: u32, n: u32, bytes_per_rank: u64, tag: u32) -> Vec<Op> {
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(local < n, "rank {local} out of job of size {n}");
    if n == 1 {
        return Vec::new();
    }
    let succ = (local + 1) % n;
    let pred = (local + n - 1) % n;
    let mut ops = Vec::with_capacity(3 * (n as usize - 1));
    for _step in 1..n {
        ops.push(Op::Irecv {
            src: Src::Rank(pred),
            tag,
        });
        ops.push(Op::Isend {
            dst: succ,
            bytes: bytes_per_rank,
            tag,
        });
        ops.push(Op::WaitAll);
    }
    ops
}

fn prev_power_of_two(n: u32) -> u32 {
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(n > 0);
    1 << (31 - n.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn prev_power_of_two_values() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(2), 2);
        assert_eq!(prev_power_of_two(3), 2);
        assert_eq!(prev_power_of_two(64), 64);
        assert_eq!(prev_power_of_two(144), 128);
    }

    /// Counts (sender → receiver, tag) pairs across all ranks' expansions
    /// and checks that every send has exactly one matching receive.
    fn check_send_recv_balance(n: u32, expand: impl Fn(u32) -> Vec<Op>) {
        // sends[(src, dst, tag)] and recvs[(src, dst, tag)] must agree.
        let mut sends: HashMap<(u32, u32, u32), i64> = HashMap::new();
        for local in 0..n {
            for op in expand(local) {
                match op {
                    Op::Isend { dst, tag, .. } => {
                        *sends.entry((local, dst, tag)).or_default() += 1;
                    }
                    Op::Irecv {
                        src: Src::Rank(s),
                        tag,
                    } => {
                        *sends.entry((s, local, tag)).or_default() -= 1;
                    }
                    Op::Irecv { src: Src::Any, .. } => {
                        panic!("collectives must not use wildcard receives");
                    }
                    _ => {}
                }
            }
        }
        for (key, balance) in sends {
            assert_eq!(balance, 0, "unbalanced send/recv for {key:?}");
        }
    }

    #[test]
    fn allreduce_balances_for_powers_of_two() {
        for n in [1u32, 2, 4, 8, 64] {
            check_send_recv_balance(n, |l| expand_allreduce(l, n, 1024, 0));
        }
    }

    #[test]
    fn allreduce_balances_for_odd_sizes() {
        // 144 is the paper's standard job size; 64 is Lulesh's; include
        // awkward small sizes too.
        for n in [3u32, 5, 6, 7, 12, 36, 144] {
            check_send_recv_balance(n, |l| expand_allreduce(l, n, 4096, 0));
        }
    }

    #[test]
    fn alltoall_balances() {
        for n in [2u32, 3, 8, 17, 36] {
            check_send_recv_balance(n, |l| expand_alltoall(l, n, 512, 0));
        }
    }

    #[test]
    fn alltoall_round_count() {
        let n = 9;
        let ops = expand_alltoall(0, n, 100, 0);
        let sends = ops.iter().filter(|o| matches!(o, Op::Isend { .. })).count();
        let recvs = ops.iter().filter(|o| matches!(o, Op::Irecv { .. })).count();
        assert_eq!(sends, (n - 1) as usize);
        assert_eq!(recvs, (n - 1) as usize);
        let waits = ops.iter().filter(|o| matches!(o, Op::WaitAll)).count();
        assert_eq!(waits, (n as usize - 1).div_ceil(ALLTOALL_WINDOW));
    }

    #[test]
    fn alltoall_covers_every_peer_exactly_once() {
        let n = 13u32;
        for local in 0..n {
            let mut dsts: Vec<u32> = expand_alltoall(local, n, 1, 0)
                .iter()
                .filter_map(|o| match o {
                    Op::Isend { dst, .. } => Some(*dst),
                    _ => None,
                })
                .collect();
            dsts.sort_unstable();
            let expect: Vec<u32> = (0..n).filter(|&d| d != local).collect();
            assert_eq!(dsts, expect);
        }
    }

    #[test]
    fn single_rank_collectives_are_empty() {
        assert!(expand_allreduce(0, 1, 8, 0).is_empty());
        assert!(expand_alltoall(0, 1, 8, 0).is_empty());
        assert!(expand_barrier(0, 1, 0).is_empty());
        assert!(expand_bcast(0, 0, 1, 8, 0).is_empty());
        assert!(expand_reduce(0, 0, 1, 8, 0).is_empty());
        assert!(expand_allgather(0, 1, 8, 0).is_empty());
    }

    #[test]
    fn bcast_balances_for_all_roots() {
        for n in [2u32, 3, 7, 8, 13, 64] {
            for root in [0, 1, n - 1] {
                check_send_recv_balance(n, |l| expand_bcast(l, root, n, 512, 0));
            }
        }
    }

    #[test]
    fn bcast_root_never_receives_and_leaves_never_send() {
        let n = 16;
        let root_ops = expand_bcast(0, 0, n, 64, 0);
        assert!(!root_ops.iter().any(|o| matches!(o, Op::Irecv { .. })));
        // Rank 15 (vrank 15 = 0b1111) is a leaf: receives once, sends 0.
        let leaf_ops = expand_bcast(15, 0, n, 64, 0);
        assert!(!leaf_ops.iter().any(|o| matches!(o, Op::Isend { .. })));
        assert_eq!(
            leaf_ops
                .iter()
                .filter(|o| matches!(o, Op::Irecv { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn reduce_balances_for_all_roots() {
        for n in [2u32, 5, 8, 12, 64] {
            for root in [0, 2 % n, n - 1] {
                check_send_recv_balance(n, |l| expand_reduce(l, root, n, 512, 0));
            }
        }
    }

    #[test]
    fn reduce_root_receives_log_n_partials() {
        let ops = expand_reduce(0, 0, 16, 64, 0);
        assert_eq!(
            ops.iter().filter(|o| matches!(o, Op::Irecv { .. })).count(),
            4,
            "root of 16 ranks combines log2(16) children"
        );
        assert!(!ops.iter().any(|o| matches!(o, Op::Isend { .. })));
    }

    #[test]
    fn reduce_non_root_sends_exactly_once() {
        for local in 1..12u32 {
            let sends = expand_reduce(local, 0, 12, 64, 0)
                .iter()
                .filter(|o| matches!(o, Op::Isend { .. }))
                .count();
            assert_eq!(sends, 1, "rank {local}");
        }
    }

    #[test]
    fn allgather_balances_and_counts_steps() {
        for n in [2u32, 3, 9, 18] {
            check_send_recv_balance(n, |l| expand_allgather(l, n, 256, 0));
            let ops = expand_allgather(0, n, 256, 0);
            let sends = ops.iter().filter(|o| matches!(o, Op::Isend { .. })).count();
            assert_eq!(sends, (n - 1) as usize, "ring does n-1 forwards");
        }
    }

    #[test]
    fn expansions_end_quiescent() {
        // Every expansion must end with WaitAll (or be empty) so that the
        // "no outstanding requests at collective entry" precondition holds
        // for the next collective.
        for n in [2u32, 5, 144] {
            for l in 0..n {
                for ops in [expand_allreduce(l, n, 64, 0), expand_alltoall(l, n, 64, 0)] {
                    if let Some(last) = ops.last() {
                        assert_eq!(*last, Op::WaitAll, "n={n} l={l}");
                    }
                }
            }
        }
    }

    proptest! {
        /// Send/recv balance holds for arbitrary job sizes.
        #[test]
        fn prop_allreduce_balance(n in 1u32..40) {
            check_send_recv_balance(n, |l| expand_allreduce(l, n, 256, 4));
        }

        /// Alltoall balance holds for arbitrary job sizes.
        #[test]
        fn prop_alltoall_balance(n in 1u32..30) {
            check_send_recv_balance(n, |l| expand_alltoall(l, n, 256, 4));
        }

        /// Bcast/reduce balance holds for arbitrary sizes and roots.
        #[test]
        fn prop_rooted_collectives_balance(n in 1u32..30, root in 0u32..30) {
            prop_assume!(root < n);
            check_send_recv_balance(n, |l| expand_bcast(l, root, n, 64, 4));
            check_send_recv_balance(n, |l| expand_reduce(l, root, n, 64, 4));
        }

        /// Tags used by expansions stay within the two-tag budget.
        #[test]
        fn prop_tag_budget(n in 2u32..40, l in 0u32..40) {
            prop_assume!(l < n);
            for op in expand_allreduce(l, n, 8, 100) {
                if let Op::Isend { tag, .. } | Op::Irecv { tag, .. } = op {
                    prop_assert!((100..102).contains(&tag));
                }
            }
        }
    }
}
