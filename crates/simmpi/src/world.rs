//! The world: jobs of ranks executing op streams over a shared fabric.
//!
//! A *job* is one MPI-like application: a set of ranks with job-local
//! numbering, its own tag space, and its own collectives. Several jobs can
//! share the same switch — exactly the co-scheduling scenario the paper
//! studies (an application plus ImpactB, plus CompressionB, plus a second
//! application).
//!
//! Ranks are cooperative state machines: the world pulls operations from a
//! rank's [`Program`] until the rank blocks (compute span, wait, stop), and
//! resumes it when the blocking condition resolves. Everything runs on one
//! event queue, so software timing and network timing share one clock and
//! every run is deterministic for a given configuration seed.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

#[cfg(feature = "audit")]
use anp_simnet::audit::{AuditLog, InvariantKind};

use anp_simnet::util::IdHashMap;
use anp_simnet::{
    AuditReport, ConfigError, EventQueue, Fabric, MessageId, NetEvent, NodeId, Notice, SimDuration,
    SimTime, SwitchConfig,
};

use crate::coll::{
    expand_allgather, expand_allreduce, expand_alltoall, expand_barrier, expand_bcast,
    expand_reduce,
};
use crate::op::{Op, Src};
use crate::p2p::{Envelope, Mailbox};
use crate::program::{Ctx, Program};
use crate::trace::{PhaseTotals, RankPhase, TraceLog};

/// Identifies a job (one application / benchmark instance) in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u32);

/// Event type of the composed simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldEvent {
    /// A network event for the fabric.
    Net(NetEvent),
    /// A rank's compute/sleep span elapsed.
    RankTimer {
        /// Global rank index.
        rank: u32,
    },
    /// A reliability-layer retransmit timeout fired for a tracked send.
    RetransmitTimer {
        /// The pending-send token the timer guards. Stale timers (the
        /// message was delivered, or a newer attempt re-armed the timer)
        /// are ignored.
        token: u64,
    },
}

impl From<NetEvent> for WorldEvent {
    fn from(ev: NetEvent) -> Self {
        WorldEvent::Net(ev)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Computing,
    BlockedWaitAll,
    Stopped,
}

struct RankState {
    job: JobId,
    local: u32,
    node: NodeId,
    program: Box<dyn Program>,
    /// Ops injected by collective lowering, drained before the program is
    /// consulted again.
    injected: VecDeque<Op>,
    /// Requests posted since the last completed wait.
    outstanding: u32,
    mailbox: Mailbox,
    status: Status,
    stopped_at: Option<SimTime>,
    coll_seq: u32,
    ops_executed: u64,
    /// Next eager sequence number per destination global rank, resized on
    /// first send to a peer. Kept on the rank rather than in a world-level
    /// map so the per-message counter bump stays cache-local.
    seq_send: Vec<u64>,
    /// Eager delivery cursor per source global rank. The low bits are the
    /// next sequence number to hand to matching; the top bit
    /// ([`SEQ_BUFFERED`]) marks a pair with out-of-order arrivals parked
    /// in [`World::recv_buffers`].
    seq_recv: Vec<u64>,
}

struct JobInfo {
    name: String,
    /// Global rank index of each job-local rank.
    ranks: Vec<u32>,
}

/// What a wire message carries, protocol-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireKind {
    /// Payload sent optimistically (send completes on injection).
    Eager,
    /// Rendezvous request-to-send announcing `payload` bytes; the wire
    /// message itself is a small control packet.
    Rts {
        /// Announced payload size.
        payload: u64,
    },
    /// Clear-to-send answering the RTS with this handshake id.
    Cts {
        /// The RTS message id being answered.
        answer: u64,
    },
    /// Rendezvous payload for this handshake id.
    Data {
        /// The RTS message id being answered.
        answer: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct WireMeta {
    job: JobId,
    src_local: u32,
    dst_local: u32,
    tag: u32,
    bytes: u64,
    kind: WireKind,
    /// Per-(source, destination) sequence number. Every eager payload
    /// carries one — the fabric's k-server routing stage can reorder
    /// whole messages, so the receiver always resequences; rendezvous
    /// control traffic (`None`) needs no ordering. With reliability
    /// enabled the same number additionally keys retransmit tracking.
    seq: Option<u64>,
}

/// Size of RTS/CTS control messages on the wire.
const RENDEZVOUS_CTRL_BYTES: u64 = 64;

/// Retransmission policy for the eager-protocol reliability layer.
///
/// Strictly opt-in (see [`World::set_reliability`]): without it the
/// message layer assumes a lossless fabric, which is exact for the default
/// [`anp_simnet::FaultPlan::none`] configuration. Every eager send always
/// carries a per-(source, destination) sequence number and the receiver
/// delivers in sequence order (the switch's parallel routing stage can
/// reorder whole messages, so resequencing is an ordering-correctness
/// matter, not a reliability one); the reliability layer adds the
/// recovery half: the sender re-sends on timeout with exponential backoff
/// until the message lands or the retry budget is spent — after which the
/// send is reported failed (see [`StallReport::failed_sends`]) rather
/// than retried forever.
///
/// Rendezvous traffic (RTS/CTS handshakes and their payloads) is *not*
/// covered: a lost control message stalls the handshake and surfaces in
/// the [`StallReport`]. Collectives are covered, since they lower to eager
/// point-to-point sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Delay before the first retransmission of an unacknowledged send.
    /// Subsequent attempts back off exponentially (×2 each).
    pub retransmit_timeout: SimDuration,
    /// Retransmissions allowed per message before it is declared failed.
    pub max_retries: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            retransmit_timeout: SimDuration::from_micros(100),
            max_retries: 8,
        }
    }
}

/// How a [`World::run_until_job_done`] call ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every rank of the job executed [`Op::Stop`].
    Completed {
        /// When the last rank stopped.
        at: SimTime,
    },
    /// The horizon passed with events still queued: the job was making
    /// (or could still make) progress but ran out of simulated time.
    DeadlineExpired(StallReport),
    /// The event queue drained with the job incomplete: no future event
    /// can unblock it. This is a deadlock or a permanent message loss.
    Stalled(StallReport),
    /// The run budget installed via [`World::set_run_budget`] was spent
    /// (too many simulation events, or the wall-clock deadline passed)
    /// before the job finished. Unlike [`RunOutcome::DeadlineExpired`]
    /// this says nothing about simulated time: the watchdog tripped.
    BudgetExhausted(StallReport),
}

impl RunOutcome {
    /// `true` iff the job ran to completion.
    pub fn completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }

    /// The stall diagnostics, for the incomplete outcomes.
    pub fn stall_report(&self) -> Option<&StallReport> {
        match self {
            RunOutcome::Completed { .. } => None,
            RunOutcome::DeadlineExpired(r)
            | RunOutcome::Stalled(r)
            | RunOutcome::BudgetExhausted(r) => Some(r),
        }
    }
}

/// Structured diagnostics for a job that failed to complete: which ranks
/// are blocked, on what, and which sends the reliability layer gave up on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// The job that did not finish.
    pub job: JobId,
    /// Its human-readable name.
    pub job_name: String,
    /// Simulated time when the run gave up.
    pub at: SimTime,
    /// Every rank of the job that has not executed [`Op::Stop`].
    pub blocked: Vec<BlockedRank>,
    /// Sends abandoned after exhausting the retry budget (empty unless
    /// reliability is enabled and the fabric lost messages for good).
    pub failed_sends: Vec<FailedSend>,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "job '{}' incomplete at {}: {} rank(s) not stopped",
            self.job_name,
            self.at,
            self.blocked.len()
        )?;
        for b in &self.blocked {
            writeln!(f, "  {b}")?;
        }
        for s in &self.failed_sends {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// One unfinished rank in a [`StallReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedRank {
    /// Job-local rank index.
    pub local: u32,
    /// Global rank index.
    pub global: u32,
    /// The node the rank runs on.
    pub node: NodeId,
    /// What the rank is blocked on.
    pub waiting_on: BlockedOn,
}

impl fmt::Display for BlockedRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {} (node {}): ", self.local, self.node.0)?;
        match &self.waiting_on {
            BlockedOn::WaitAll {
                outstanding,
                pending_recvs,
            } => {
                write!(f, "WaitAll on {outstanding} request(s)")?;
                if !pending_recvs.is_empty() {
                    write!(f, ", unmatched recvs:")?;
                    for (src, tag) in pending_recvs {
                        match src {
                            Src::Any => write!(f, " (any, tag {tag})")?,
                            Src::Rank(r) => write!(f, " (rank {r}, tag {tag})")?,
                        }
                    }
                }
                Ok(())
            }
            BlockedOn::Computing => write!(f, "mid-compute span"),
            BlockedOn::Ready => write!(f, "runnable (never blocked)"),
        }
    }
}

/// The blocking condition of one rank in a [`StallReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockedOn {
    /// Blocked in [`Op::WaitAll`].
    WaitAll {
        /// Requests still outstanding.
        outstanding: u32,
        /// Posted receives with no matching message, as `(source, tag)`
        /// selectors — the usual culprits when a message was lost.
        pending_recvs: Vec<(Src, u32)>,
    },
    /// Inside a compute/sleep span (only possible for
    /// [`RunOutcome::DeadlineExpired`]; a drained queue has no timers).
    Computing,
    /// Runnable but not finished when the run gave up.
    Ready,
}

/// A send the reliability layer abandoned after its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedSend {
    /// The job the send belongs to.
    pub job: JobId,
    /// Job-local sending rank.
    pub src: u32,
    /// Job-local destination rank.
    pub dst: u32,
    /// Match tag.
    pub tag: u32,
    /// Payload size.
    pub bytes: u64,
    /// Per-(src, dst) sequence number of the lost message.
    pub seq: u64,
    /// Wire attempts made (1 original + retries).
    pub attempts: u32,
}

impl fmt::Display for FailedSend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "send failed: rank {} -> rank {} tag {} ({} B, seq {}) after {} attempts",
            self.src, self.dst, self.tag, self.bytes, self.seq, self.attempts
        )
    }
}

/// Reliability-layer counters (all zero unless [`World::set_reliability`]
/// was called).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Messages re-sent after a timeout.
    pub retransmits: u64,
    /// Duplicate deliveries suppressed by sequence numbers (a spurious
    /// retransmit whose original arrived late).
    pub duplicates: u64,
    /// Sends abandoned after the retry budget.
    pub failures: u64,
}

/// Sender-side state of one tracked (in-flight, unacknowledged) eager send.
#[derive(Debug, Clone, Copy)]
struct PendingSend {
    meta: WireMeta,
    src_global: u32,
    src_node: NodeId,
    dst_node: NodeId,
    seq: u64,
    /// Wire attempts made so far (1 = original send only).
    attempts: u32,
    current_msg: MessageId,
}

/// Top bit of a [`RankState::seq_recv`] cursor: set while the pair has
/// out-of-order arrivals parked in [`World::recv_buffers`]. Loss-free runs
/// never set it, so per-message delivery stays a flat vector read.
const SEQ_BUFFERED: u64 = 1 << 63;
/// Mask extracting the delivery cursor from a [`RankState::seq_recv`] slot.
const SEQ_CURSOR: u64 = SEQ_BUFFERED - 1;

/// The composed simulation: fabric + jobs + event loop.
pub struct World {
    fabric: Fabric,
    q: EventQueue<WorldEvent>,
    ranks: Vec<RankState>,
    jobs: Vec<JobInfo>,
    meta: IdHashMap<MessageId, WireMeta>,
    /// Global rank whose send request completes when the message injects.
    send_owner: IdHashMap<MessageId, u32>,
    ready: VecDeque<u32>,
    in_ready: Vec<bool>,
    started: bool,
    notice_scratch: Vec<Notice>,
    trace: TraceLog,
    /// Messages at or above this size use the rendezvous protocol
    /// (RTS/CTS handshake before the payload moves). `u64::MAX` = eager
    /// everywhere, the default.
    eager_threshold: u64,
    /// Sender side of open handshakes: RTS id → (sender global rank,
    /// payload bytes, dst node).
    rendezvous_sends: IdHashMap<u64, (u32, u64, NodeId)>,
    /// Receiver side: RTS id → receiver global rank awaiting the payload.
    awaiting_data: IdHashMap<u64, u32>,
    /// Retransmission policy; `None` (the default) assumes a lossless
    /// fabric and adds zero overhead.
    reliability: Option<ReliabilityConfig>,
    /// Next pending-send token.
    next_token: u64,
    /// Tracked unacknowledged sends by token.
    pending_sends: IdHashMap<u64, PendingSend>,
    /// Wire message id → pending-send token (one entry per live attempt).
    msg_token: IdHashMap<MessageId, u64>,
    /// Out-of-order eager arrivals per (src_global << 32 | dst_global)
    /// pair, `None` marking a sequence number voided by a failed send (its
    /// slot is consumed so later messages can drain; the matching receive
    /// simply never completes). Only pairs whose [`RankState::seq_recv`]
    /// cursor carries [`SEQ_BUFFERED`] have an entry.
    recv_buffers: IdHashMap<u64, BTreeMap<u64, Option<Envelope>>>,
    /// Sends abandoned after the retry budget, in failure order.
    failed_sends: Vec<FailedSend>,
    rel_stats: ReliabilityStats,
    /// Hard cap on [`World::events_processed`]; `None` = unlimited.
    max_events: Option<u64>,
    /// Wall-clock deadline for the run loops, checked every
    /// [`WALL_CHECK_MASK`]+1 events; `None` = unlimited.
    // anp-lint: allow(D002) — cooperative wall budget from the supervisor; trips only abort a cell, never alter a completed result
    wall_deadline: Option<std::time::Instant>,
    /// Set once a run loop stopped because the budget was spent.
    budget_exhausted: bool,
    /// World-level invariant auditor (FIFO ordering, sequence windows,
    /// monotonic time). `None` until [`World::enable_audit`]; the field only
    /// exists when the `audit` feature is compiled in.
    #[cfg(feature = "audit")]
    audit: Option<Box<WorldAudit>>,
}

/// Shadow state for the world-level invariants. The eager FIFO check works
/// by *issue indices*: every eager payload send on a (source rank,
/// destination rank, tag) channel gets the next index, and the resequencer
/// must hand strictly increasing indices to matching — exactly MPI's
/// non-overtaking rule, robust to messages that legitimately never arrive
/// (their slots are voided, consuming the stamp without advancing the
/// watermark).
#[cfg(feature = "audit")]
struct WorldAudit {
    log: AuditLog,
    /// Clock of the previously popped event, for the monotonicity check.
    prev_now: SimTime,
    /// Next issue index per (pair key, tag) channel.
    issue_next: BTreeMap<(u64, u32), u64>,
    /// (pair key, sequence number) → (channel, issue index), stamped at
    /// send time and consumed when the resequencer hands the slot to
    /// matching — stable across retransmissions, which reuse the seq.
    seq_issue: BTreeMap<(u64, u64), ((u64, u32), u64)>,
    /// One past the last delivered issue index per channel.
    delivered: BTreeMap<(u64, u32), u64>,
    /// Lowest legal value of each pair's resequencing cursor.
    seq_floor: BTreeMap<u64, u64>,
}

#[cfg(feature = "audit")]
impl WorldAudit {
    fn new() -> Self {
        WorldAudit {
            log: AuditLog::new(),
            prev_now: SimTime::ZERO,
            issue_next: BTreeMap::new(),
            seq_issue: BTreeMap::new(),
            delivered: BTreeMap::new(),
            seq_floor: BTreeMap::new(),
        }
    }
}

/// The run loops consult the wall clock only when
/// `events_processed & WALL_CHECK_MASK == 0`, keeping the watchdog's
/// steady-state cost to one branch per event.
const WALL_CHECK_MASK: u64 = 0xFFFF;

impl World {
    /// Creates a world over a fresh fabric.
    ///
    /// # Panics
    /// Panics if the configuration is invalid; use [`World::try_new`] to
    /// handle [`ConfigError`] gracefully.
    pub fn new(cfg: SwitchConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(w) => w,
            Err(e) => panic!("invalid switch configuration: {e}"),
        }
    }

    /// Creates a world over a fresh fabric, validating the configuration.
    pub fn try_new(cfg: SwitchConfig) -> Result<Self, ConfigError> {
        Ok(World {
            fabric: Fabric::try_new(cfg)?,
            q: EventQueue::new(),
            ranks: Vec::new(),
            jobs: Vec::new(),
            meta: IdHashMap::default(),
            send_owner: IdHashMap::default(),
            ready: VecDeque::new(),
            in_ready: Vec::new(),
            started: false,
            notice_scratch: Vec::new(),
            trace: TraceLog::new(),
            eager_threshold: u64::MAX,
            rendezvous_sends: IdHashMap::default(),
            awaiting_data: IdHashMap::default(),
            reliability: None,
            next_token: 0,
            pending_sends: IdHashMap::default(),
            msg_token: IdHashMap::default(),
            recv_buffers: IdHashMap::default(),
            failed_sends: Vec::new(),
            rel_stats: ReliabilityStats::default(),
            max_events: None,
            wall_deadline: None,
            budget_exhausted: false,
            #[cfg(feature = "audit")]
            audit: None,
        })
    }

    /// Turns on the invariant auditor for this world and its fabric. No-op
    /// unless compiled with the `audit` feature (see
    /// [`anp_simnet::audit::audit_compiled`]), so callers never need feature
    /// gates of their own. Call before running; enabling mid-run misses
    /// events sent earlier.
    pub fn enable_audit(&mut self) {
        self.fabric.enable_audit();
        #[cfg(feature = "audit")]
        if self.audit.is_none() {
            self.audit = Some(Box::new(WorldAudit::new()));
        }
    }

    /// `true` when the auditor is compiled in and enabled.
    pub fn audit_enabled(&self) -> bool {
        self.fabric.audit_enabled()
    }

    /// Drains the auditor's findings — the world-level checks (FIFO,
    /// sequence windows, monotonic time) merged with the fabric's
    /// conservation sweep. Returns `None` when auditing is off or compiled
    /// out. A non-clean report means the *simulator* broke its own physics:
    /// the run's artefacts cannot be trusted.
    pub fn take_audit_report(&mut self) -> Option<AuditReport> {
        #[cfg(feature = "audit")]
        {
            let mut report = self.audit.as_deref_mut()?.log.take_report();
            if let Some(fabric_report) = self.fabric.take_audit_report() {
                report.merge(fabric_report);
            }
            Some(report)
        }
        #[cfg(not(feature = "audit"))]
        {
            None
        }
    }

    /// Installs a run budget: the run loops stop once
    /// [`World::events_processed`] reaches `max_events` or the wall clock
    /// passes `wall_deadline`, whichever comes first (`None` = unlimited).
    /// A tripped budget makes [`World::run_until_job_done`] return
    /// [`RunOutcome::BudgetExhausted`] and sets
    /// [`World::budget_exhausted`] for the horizon-only
    /// [`World::run_until`] path.
    ///
    /// The event cap is deterministic (the simulation stops after exactly
    /// the same event under any schedule); the wall deadline is checked
    /// every 65 536 events, so it is a watchdog, not a precise limit.
    pub fn set_run_budget(
        &mut self,
        max_events: Option<u64>,
        // anp-lint: allow(D002) — deadline handed down by the supervision envelope (anp-core::supervise), not read here
        wall_deadline: Option<std::time::Instant>,
    ) {
        self.max_events = max_events;
        self.wall_deadline = wall_deadline;
    }

    /// True once a run loop stopped because the installed budget
    /// ([`World::set_run_budget`]) was spent.
    pub fn budget_exhausted(&self) -> bool {
        self.budget_exhausted
    }

    /// Whether the installed budget is spent; latches
    /// [`World::budget_exhausted`] on first trip.
    fn budget_tripped(&mut self) -> bool {
        if self.budget_exhausted {
            return true;
        }
        let events = self.q.events_processed();
        let tripped = self.max_events.is_some_and(|cap| events >= cap)
            || (events & WALL_CHECK_MASK == 0
                && self
                    .wall_deadline
                    // anp-lint: allow(D002) — wall-budget trip check; a trip yields a typed BudgetReport, never a silent result change
                    .is_some_and(|dl| std::time::Instant::now() >= dl));
        if tripped {
            self.budget_exhausted = true;
        }
        tripped
    }

    /// Enables the eager-protocol reliability layer (sequence numbers,
    /// in-order delivery, timeout-driven retransmission). Required for
    /// applications to survive a lossy [`anp_simnet::FaultPlan`]; useless
    /// overhead on a lossless fabric. Call before the world starts.
    pub fn set_reliability(&mut self, cfg: ReliabilityConfig) {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(!self.started, "enable reliability before running");
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(
            cfg.retransmit_timeout > SimDuration::ZERO,
            "retransmit timeout must be positive"
        );
        self.reliability = Some(cfg);
    }

    /// Reliability-layer counters (zeros when reliability is off).
    pub fn reliability_stats(&self) -> ReliabilityStats {
        self.rel_stats
    }

    /// Sets the eager/rendezvous protocol split: messages of `bytes` or
    /// more handshake (RTS/CTS) before moving their payload, as real MPI
    /// stacks do for large transfers. The default (`u64::MAX`) keeps
    /// everything eager. Call before the world starts.
    pub fn set_eager_threshold(&mut self, bytes: u64) {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(!self.started, "set the protocol split before running");
        self.eager_threshold = bytes;
    }

    /// Turns on per-rank phase accounting (compute vs network-wait vs
    /// run). Call after adding all jobs and before running.
    pub fn enable_tracing(&mut self) {
        self.trace.enable(self.ranks.len(), self.q.now());
    }

    /// This rank's phase totals up to the current time (zeros unless
    /// tracing was enabled).
    pub fn rank_phase_totals(&self, rank: u32) -> PhaseTotals {
        self.trace.totals_at(rank, self.q.now())
    }

    /// Aggregated phase totals over all ranks of `job` (zeros unless
    /// tracing was enabled).
    pub fn job_phase_totals(&self, job: JobId) -> PhaseTotals {
        self.trace
            .aggregate_at(&self.jobs[job.0 as usize].ranks, self.q.now())
    }

    /// Adds a job: one program per rank, with its node placement.
    ///
    /// # Panics
    /// Panics if called after the simulation started, if `members` is
    /// empty, or if any node index is out of range.
    pub fn add_job(
        &mut self,
        name: impl Into<String>,
        members: Vec<(Box<dyn Program>, NodeId)>,
    ) -> JobId {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(!self.started, "cannot add jobs after the world started");
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(!members.is_empty(), "a job needs at least one rank");
        let job = JobId(self.jobs.len() as u32);
        let mut ranks = Vec::with_capacity(members.len());
        for (local, (program, node)) in members.into_iter().enumerate() {
            // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
            assert!(
                node.index() < self.fabric.nodes() as usize,
                "node {} out of range for a {}-node fabric",
                node.0,
                self.fabric.nodes()
            );
            let global = self.ranks.len() as u32;
            ranks.push(global);
            self.ranks.push(RankState {
                job,
                local: local as u32,
                node,
                program,
                injected: VecDeque::new(),
                outstanding: 0,
                mailbox: Mailbox::default(),
                status: Status::Ready,
                stopped_at: None,
                coll_seq: 0,
                ops_executed: 0,
                seq_send: Vec::new(),
                seq_recv: Vec::new(),
            });
            self.in_ready.push(false);
        }
        self.jobs.push(JobInfo {
            name: name.into(),
            ranks,
        });
        job
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// The underlying fabric (telemetry).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Mutable fabric access (e.g. to reset telemetry windows).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.q.events_processed()
    }

    /// Number of ranks across all jobs.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Job name.
    pub fn job_name(&self, job: JobId) -> &str {
        &self.jobs[job.0 as usize].name
    }

    /// True when every rank of `job` has executed [`Op::Stop`].
    pub fn job_done(&self, job: JobId) -> bool {
        self.jobs[job.0 as usize]
            .ranks
            .iter()
            .all(|&g| self.ranks[g as usize].status == Status::Stopped)
    }

    /// The time the last rank of `job` stopped, if the job is done.
    pub fn job_finish_time(&self, job: JobId) -> Option<SimTime> {
        let info = &self.jobs[job.0 as usize];
        info.ranks
            .iter()
            .map(|&g| self.ranks[g as usize].stopped_at)
            .try_fold(SimTime::ZERO, |acc, t| t.map(|t| acc.max(t)))
    }

    /// Total ops executed by all ranks of a job (progress telemetry).
    pub fn job_ops_executed(&self, job: JobId) -> u64 {
        self.jobs[job.0 as usize]
            .ranks
            .iter()
            .map(|&g| self.ranks[g as usize].ops_executed)
            .sum()
    }

    /// Runs until no events remain at or before `horizon`, or until the
    /// installed run budget is spent (see [`World::set_run_budget`];
    /// check [`World::budget_exhausted`] afterwards).
    pub fn run_until(&mut self, horizon: SimTime) {
        self.bootstrap();
        while !self.budget_tripped() && self.step(horizon) {}
    }

    /// Runs until `job` completes, the event queue drains, `horizon`
    /// passes, or the installed run budget is spent — distinct outcomes
    /// (completion, deadlock/stall, deadline expiry, budget exhaustion)
    /// that callers must not conflate: an expired deadline means "needed
    /// more simulated time", a stall means no amount of time can help,
    /// and a spent budget means the watchdog gave up on the run.
    pub fn run_until_job_done(&mut self, job: JobId, horizon: SimTime) -> RunOutcome {
        self.bootstrap();
        while !self.job_done(job) {
            if self.budget_tripped() || !self.step(horizon) {
                break;
            }
        }
        if self.job_done(job) {
            return RunOutcome::Completed {
                at: self.job_finish_time(job).unwrap_or_else(|| self.q.now()),
            };
        }
        let report = self.stall_report(job);
        if self.budget_exhausted {
            RunOutcome::BudgetExhausted(report)
        } else if self.q.peek_time().is_some() {
            RunOutcome::DeadlineExpired(report)
        } else {
            RunOutcome::Stalled(report)
        }
    }

    /// Diagnostics for an unfinished job: every non-stopped rank with its
    /// blocking condition, plus any sends the reliability layer abandoned.
    pub fn stall_report(&self, job: JobId) -> StallReport {
        let blocked = self.jobs[job.0 as usize]
            .ranks
            .iter()
            .filter_map(|&g| {
                let r = &self.ranks[g as usize];
                let waiting_on = match r.status {
                    Status::Stopped => return None,
                    Status::Computing => BlockedOn::Computing,
                    Status::Ready => BlockedOn::Ready,
                    Status::BlockedWaitAll => BlockedOn::WaitAll {
                        outstanding: r.outstanding,
                        pending_recvs: r.mailbox.posted_descriptors(),
                    },
                };
                Some(BlockedRank {
                    local: r.local,
                    global: g,
                    node: r.node,
                    waiting_on,
                })
            })
            .collect();
        StallReport {
            job,
            job_name: self.jobs[job.0 as usize].name.clone(),
            at: self.q.now(),
            blocked,
            failed_sends: self
                .failed_sends
                .iter()
                .filter(|s| s.job == job)
                .cloned()
                .collect(),
        }
    }

    fn bootstrap(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Announce scheduled link-down/up windows (no-op without faults).
        self.fabric.prime_fault_events(&mut self.q);
        for g in 0..self.ranks.len() as u32 {
            self.make_ready(g);
        }
        self.drain_ready();
    }

    /// Processes one event. Returns `false` when the queue is empty or the
    /// next event lies beyond `horizon`.
    fn step(&mut self, horizon: SimTime) -> bool {
        let Some(t) = self.q.peek_time() else {
            return false;
        };
        if t > horizon {
            return false;
        }
        // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
        let (_, ev) = self.q.pop().expect("peeked event vanished");
        #[cfg(feature = "audit")]
        if let Some(a) = self.audit.as_deref_mut() {
            if t < a.prev_now {
                let detail = format!("event clock moved backwards: {} after {}", t, a.prev_now);
                a.log.violate(InvariantKind::TimeMonotonicity, t, detail);
            }
            a.prev_now = t;
            a.log.note_event(format!("t={t} {ev:?}"));
        }
        match ev {
            WorldEvent::Net(ne) => {
                let mut notices = std::mem::take(&mut self.notice_scratch);
                notices.clear();
                self.fabric.handle(&mut self.q, ne, &mut notices);
                for n in notices.drain(..) {
                    self.apply_notice(n);
                }
                self.notice_scratch = notices;
            }
            WorldEvent::RankTimer { rank } => {
                debug_assert_eq!(self.ranks[rank as usize].status, Status::Computing);
                self.make_ready(rank);
            }
            WorldEvent::RetransmitTimer { token } => self.retransmit_or_fail(token),
        }
        self.drain_ready();
        true
    }

    fn apply_notice(&mut self, n: Notice) {
        match n {
            Notice::MessageInjected { msg, .. } => {
                if let Some(owner) = self.send_owner.remove(&msg) {
                    let r = &mut self.ranks[owner as usize];
                    debug_assert!(r.outstanding > 0);
                    r.outstanding -= 1;
                    self.maybe_unblock(owner);
                }
            }
            Notice::MessageDelivered { msg, .. } => {
                let meta = self
                    .meta
                    .remove(&msg)
                    // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
                    .expect("delivered message without metadata");
                let dst_global = self.jobs[meta.job.0 as usize].ranks[meta.dst_local as usize];
                match meta.kind {
                    WireKind::Eager => {
                        let env = Envelope {
                            src: meta.src_local,
                            tag: meta.tag,
                            bytes: meta.bytes,
                            rendezvous: None,
                        };
                        // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
                        let seq = meta.seq.expect("eager message without a sequence number");
                        // Under reliability the arrival acknowledges the
                        // send: drop the pending record and its timer
                        // guard. Either way the envelope resequences.
                        if self.reliability.is_some() {
                            if let Some(token) = self.msg_token.remove(&msg) {
                                self.pending_sends.remove(&token);
                            }
                        }
                        let src_global =
                            self.jobs[meta.job.0 as usize].ranks[meta.src_local as usize];
                        self.accept_sequenced(src_global, dst_global, seq, env);
                    }
                    WireKind::Rts { payload } => {
                        // The announcement enters matching; when matched
                        // (now or at a later Irecv) the receiver answers
                        // with a CTS. The recv request stays outstanding
                        // until the payload lands.
                        let matched = self.ranks[dst_global as usize].mailbox.deliver(Envelope {
                            src: meta.src_local,
                            tag: meta.tag,
                            bytes: payload,
                            rendezvous: Some(msg.0),
                        });
                        if matched {
                            self.send_cts(dst_global, msg.0);
                        }
                    }
                    WireKind::Cts { answer } => {
                        // The receiver is ready: move the payload.
                        let (sender_rank, bytes, dst_node) = self
                            .rendezvous_sends
                            .remove(&answer)
                            // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
                            .expect("CTS for unknown handshake");
                        let src_node = self.ranks[sender_rank as usize].node;
                        let data = self.fabric.send_message(
                            &mut self.q,
                            u64::from(sender_rank),
                            src_node,
                            dst_node,
                            bytes,
                        );
                        self.meta.insert(
                            data,
                            WireMeta {
                                job: meta.job,
                                src_local: meta.dst_local,
                                dst_local: meta.src_local,
                                tag: 0,
                                bytes,
                                kind: WireKind::Data { answer },
                                seq: None,
                            },
                        );
                        // The send request completes when the payload has
                        // left the sender (local completion).
                        self.send_owner.insert(data, sender_rank);
                    }
                    WireKind::Data { answer } => {
                        let receiver = self
                            .awaiting_data
                            .remove(&answer)
                            // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
                            .expect("payload for unknown handshake");
                        debug_assert_eq!(receiver, dst_global);
                        let r = &mut self.ranks[receiver as usize];
                        debug_assert!(r.outstanding > 0);
                        r.outstanding -= 1;
                        self.maybe_unblock(receiver);
                    }
                }
            }
            Notice::MessageDropped { msg, .. } => {
                // The fabric lost the message to an injected fault. The
                // sender's request already completed at injection (eager
                // semantics); recovery, if any, is timer-driven — the
                // reliability layer deliberately ignores this omniscient
                // signal, exactly like a real sender would have to.
                let meta = self.meta.remove(&msg);
                self.msg_token.remove(&msg);
                // Without a reliability layer nothing will retransmit the
                // loss; void its sequence slot so the pair's later traffic
                // still delivers (in order) instead of waiting forever.
                if self.reliability.is_none() {
                    if let Some(meta) = meta {
                        if let (WireKind::Eager, Some(seq)) = (meta.kind, meta.seq) {
                            let ranks = &self.jobs[meta.job.0 as usize].ranks;
                            let src_global = ranks[meta.src_local as usize];
                            let dst_global = ranks[meta.dst_local as usize];
                            self.void_sequenced(src_global, dst_global, seq);
                        }
                    }
                }
            }
            Notice::PacketDelivered { .. }
            | Notice::PacketDropped { .. }
            | Notice::LinkDown { .. }
            | Notice::LinkUp { .. } => {}
        }
    }

    /// Hands an eager envelope to the destination rank's matching engine.
    fn deliver_envelope(&mut self, dst_global: u32, env: Envelope) {
        let r = &mut self.ranks[dst_global as usize];
        let matched = r.mailbox.deliver(env);
        if matched {
            debug_assert!(r.outstanding > 0);
            r.outstanding -= 1;
            self.maybe_unblock(dst_global);
        }
    }

    /// Accepts a sequenced arrival: suppresses duplicates, buffers
    /// out-of-order messages, and drains everything now in order.
    fn accept_sequenced(&mut self, src_global: u32, dst_global: u32, seq: u64, env: Envelope) {
        let cursors = &mut self.ranks[dst_global as usize].seq_recv;
        if cursors.len() <= src_global as usize {
            cursors.resize(src_global as usize + 1, 0);
        }
        let stored = cursors[src_global as usize];
        if stored & SEQ_BUFFERED == 0 {
            // Nothing parked behind this pair — every message of a
            // loss-free run. A flat cursor bump and a direct delivery.
            if seq < stored {
                self.rel_stats.duplicates += 1;
                return;
            }
            if seq == stored {
                cursors[src_global as usize] = stored + 1;
                #[cfg(feature = "audit")]
                {
                    let key = pair_key(src_global, dst_global);
                    self.audit_fifo_delivery(key, seq, true);
                    self.audit_seq_window(src_global, dst_global);
                }
                self.deliver_envelope(dst_global, env);
                return;
            }
            // Gap: park the arrival and flag the cursor so later messages
            // take the buffered path until the pair drains dry.
            cursors[src_global as usize] = stored | SEQ_BUFFERED;
        }
        let cur = self.ranks[dst_global as usize].seq_recv[src_global as usize] & SEQ_CURSOR;
        let key = pair_key(src_global, dst_global);
        let buffer = self.recv_buffers.entry(key).or_default();
        if seq < cur || buffer.contains_key(&seq) {
            self.rel_stats.duplicates += 1;
            return;
        }
        buffer.insert(seq, Some(env));
        self.drain_sequenced(src_global, dst_global);
        #[cfg(feature = "audit")]
        self.audit_seq_window(src_global, dst_global);
    }

    /// Marks `seq` as permanently lost so later messages on the pair can
    /// still be delivered in order. The receive that would have matched it
    /// stays pending forever — visible in the [`StallReport`].
    fn void_sequenced(&mut self, src_global: u32, dst_global: u32, seq: u64) {
        let cursors = &mut self.ranks[dst_global as usize].seq_recv;
        if cursors.len() <= src_global as usize {
            cursors.resize(src_global as usize + 1, 0);
        }
        let stored = cursors[src_global as usize];
        if seq < stored & SEQ_CURSOR {
            return; // A duplicate of the "failed" message made it after all.
        }
        cursors[src_global as usize] = stored | SEQ_BUFFERED;
        let key = pair_key(src_global, dst_global);
        self.recv_buffers.entry(key).or_default().insert(seq, None);
        self.drain_sequenced(src_global, dst_global);
        #[cfg(feature = "audit")]
        self.audit_seq_window(src_global, dst_global);
    }

    /// Checks a pair's resequencing window after it absorbed an arrival:
    /// the delivery cursor must never regress, and nothing below the cursor
    /// may remain buffered (it would be delivered out of order or never).
    #[cfg(feature = "audit")]
    fn audit_seq_window(&mut self, src_global: u32, dst_global: u32) {
        let Some(a) = self.audit.as_deref_mut() else {
            return;
        };
        let key = pair_key(src_global, dst_global);
        let next = self.ranks[dst_global as usize]
            .seq_recv
            .get(src_global as usize)
            .copied()
            .unwrap_or(0)
            & SEQ_CURSOR;
        let now = self.q.now();
        let floor = a.seq_floor.entry(key).or_insert(0);
        if next < *floor {
            let detail = format!(
                "pair ({src_global}, {dst_global}): delivery cursor moved backwards from {} to {next}",
                *floor
            );
            a.log.violate(InvariantKind::SeqWindow, now, detail);
        }
        *floor = next;
        if let Some((&first, _)) = self.recv_buffers.get(&key).and_then(|b| b.iter().next()) {
            if first < next {
                let detail = format!(
                    "pair ({src_global}, {dst_global}): buffered seq {first} below delivery cursor {next}"
                );
                a.log.violate(InvariantKind::SeqWindow, now, detail);
            }
        }
    }

    /// Checks the eager non-overtaking rule end to end: on each (source,
    /// destination, tag) channel, send-time issue indices must reach the
    /// matching engine strictly in increasing order. Called as the
    /// resequencer drains a slot; an independent check of the pipeline
    /// (fabric reordering + resequencing buffer) using only send-time
    /// stamps. Voided slots consume their stamp without advancing the
    /// watermark — a lost send is allowed to never arrive, not to arrive
    /// late.
    #[cfg(feature = "audit")]
    fn audit_fifo_delivery(&mut self, key: u64, seq: u64, delivered: bool) {
        let Some(a) = self.audit.as_deref_mut() else {
            return;
        };
        let Some((chan, issue)) = a.seq_issue.remove(&(key, seq)) else {
            return;
        };
        if !delivered {
            return;
        }
        let last = a.delivered.entry(chan).or_insert(0);
        if issue < *last {
            let ((_, tag), prev) = (chan, *last - 1);
            let (src, dst) = (key >> 32, key & u64::from(u32::MAX));
            let detail = format!(
                "channel (src {src}, dst {dst}, tag {tag}): send #{issue} \
                 delivered after send #{prev} (FIFO overtaking)"
            );
            a.log
                .violate(InvariantKind::FifoOrdering, self.q.now(), detail);
        } else {
            *last = issue + 1;
        }
    }

    /// Delivers the in-order prefix of a pair's side buffer, then clears
    /// the cursor's [`SEQ_BUFFERED`] flag (and drops the buffer) once the
    /// pair drains dry so later arrivals take the flat fast path again.
    fn drain_sequenced(&mut self, src_global: u32, dst_global: u32) {
        let key = pair_key(src_global, dst_global);
        loop {
            let next = self.ranks[dst_global as usize].seq_recv[src_global as usize] & SEQ_CURSOR;
            let buffer = self
                .recv_buffers
                .get_mut(&key)
                // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
                .expect("pair buffer vanished");
            let Some(slot) = buffer.remove(&next) else {
                if buffer.is_empty() {
                    self.recv_buffers.remove(&key);
                    self.ranks[dst_global as usize].seq_recv[src_global as usize] = next;
                }
                return;
            };
            self.ranks[dst_global as usize].seq_recv[src_global as usize] =
                (next + 1) | SEQ_BUFFERED;
            #[cfg(feature = "audit")]
            self.audit_fifo_delivery(key, next, slot.is_some());
            if let Some(env) = slot {
                self.deliver_envelope(dst_global, env);
            }
        }
    }

    /// A retransmit timer fired: re-send the message if its budget allows,
    /// declare it failed otherwise. Stale timers (message acknowledged, or
    /// a newer attempt re-armed) are ignored.
    fn retransmit_or_fail(&mut self, token: u64) {
        let Some(p) = self.pending_sends.get(&token).copied() else {
            return;
        };
        let rel = self
            .reliability
            // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
            .expect("pending send tracked without a reliability config");
        if p.attempts > rel.max_retries {
            // Budget spent: give up and unblock the destination's later
            // traffic by voiding the sequence number.
            self.pending_sends.remove(&token);
            let dst_global = self.jobs[p.meta.job.0 as usize].ranks[p.meta.dst_local as usize];
            self.rel_stats.failures += 1;
            self.failed_sends.push(FailedSend {
                job: p.meta.job,
                src: p.meta.src_local,
                dst: p.meta.dst_local,
                tag: p.meta.tag,
                bytes: p.meta.bytes,
                seq: p.seq,
                attempts: p.attempts,
            });
            self.void_sequenced(p.src_global, dst_global, p.seq);
            return;
        }
        // Re-send. The sender's request completed at first injection, so
        // no send_owner entry; the new wire message maps to the same token.
        self.rel_stats.retransmits += 1;
        let msg = self.fabric.send_message(
            &mut self.q,
            u64::from(p.src_global),
            p.src_node,
            p.dst_node,
            p.meta.bytes,
        );
        self.meta.insert(msg, p.meta);
        self.msg_token.insert(msg, token);
        // anp-lint: allow(D003) — locally proven: guarded by the explicit check a few lines above
        let entry = self.pending_sends.get_mut(&token).expect("checked above");
        entry.attempts += 1;
        entry.current_msg = msg;
        let backoff = rel.retransmit_timeout * (1u64 << (entry.attempts - 1).min(20));
        self.q
            .schedule_after(backoff, WorldEvent::RetransmitTimer { token });
    }

    fn maybe_unblock(&mut self, rank: u32) {
        let r = &self.ranks[rank as usize];
        if r.status == Status::BlockedWaitAll && r.outstanding == 0 {
            self.make_ready(rank);
        }
    }

    fn make_ready(&mut self, rank: u32) {
        let r = &mut self.ranks[rank as usize];
        if r.status == Status::Stopped || self.in_ready[rank as usize] {
            return;
        }
        r.status = Status::Ready;
        self.trace
            .transition(rank, RankPhase::Running, self.q.now());
        self.in_ready[rank as usize] = true;
        self.ready.push_back(rank);
    }

    fn drain_ready(&mut self) {
        while let Some(rank) = self.ready.pop_front() {
            self.in_ready[rank as usize] = false;
            if self.ranks[rank as usize].status == Status::Ready {
                self.advance(rank);
            }
        }
    }

    /// Executes ops for one rank until it blocks or stops.
    fn advance(&mut self, rank: u32) {
        loop {
            let op = {
                let r = &mut self.ranks[rank as usize];
                match r.injected.pop_front() {
                    Some(op) => op,
                    None => {
                        let ctx = Ctx { now: self.q.now() };
                        r.program.next_op(&ctx)
                    }
                }
            };
            self.ranks[rank as usize].ops_executed += 1;
            match op {
                Op::Compute(d) | Op::Sleep(d) => {
                    if d == SimDuration::ZERO {
                        continue;
                    }
                    self.ranks[rank as usize].status = Status::Computing;
                    self.trace
                        .transition(rank, RankPhase::Computing, self.q.now());
                    self.q.schedule_after(d, WorldEvent::RankTimer { rank });
                    return;
                }
                Op::Isend { dst, bytes, tag } => {
                    self.do_isend(rank, dst, bytes, tag);
                }
                Op::Irecv { src, tag } => {
                    let matched = self.ranks[rank as usize].mailbox.post(src, tag);
                    match matched {
                        None => self.ranks[rank as usize].outstanding += 1,
                        Some(env) => {
                            if let Some(rts_id) = env.rendezvous {
                                // Matched a pending announcement: answer
                                // CTS and wait for the payload.
                                self.ranks[rank as usize].outstanding += 1;
                                self.send_cts(rank, rts_id);
                            }
                            // Eager match: payload already arrived, the
                            // request is complete immediately.
                        }
                    }
                }
                Op::WaitAll => {
                    let r = &mut self.ranks[rank as usize];
                    if r.outstanding > 0 {
                        r.status = Status::BlockedWaitAll;
                        self.trace
                            .transition(rank, RankPhase::Waiting, self.q.now());
                        return;
                    }
                }
                Op::Barrier => self.inject_collective(rank, CollKind::Barrier),
                Op::Allreduce { bytes } => {
                    self.inject_collective(rank, CollKind::Allreduce { bytes })
                }
                Op::Alltoall { bytes_per_pair } => {
                    self.inject_collective(rank, CollKind::Alltoall { bytes_per_pair })
                }
                Op::Bcast { root, bytes } => {
                    self.inject_collective(rank, CollKind::Bcast { root, bytes })
                }
                Op::Reduce { root, bytes } => {
                    self.inject_collective(rank, CollKind::Reduce { root, bytes })
                }
                Op::Allgather { bytes_per_rank } => {
                    self.inject_collective(rank, CollKind::Allgather { bytes_per_rank })
                }
                Op::Stop => {
                    let r = &mut self.ranks[rank as usize];
                    assert_eq!(
                        r.outstanding, 0,
                        "rank stopped with outstanding requests (job {:?} local {})",
                        r.job, r.local
                    );
                    r.status = Status::Stopped;
                    r.stopped_at = Some(self.q.now());
                    self.trace
                        .transition(rank, RankPhase::Running, self.q.now());
                    return;
                }
            }
        }
    }

    fn do_isend(&mut self, rank: u32, dst_local: u32, bytes: u64, tag: u32) {
        let (job, src_local, src_node) = {
            let r = &self.ranks[rank as usize];
            (r.job, r.local, r.node)
        };
        let job_info = &self.jobs[job.0 as usize];
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(
            (dst_local as usize) < job_info.ranks.len(),
            "Isend to rank {dst_local} outside job '{}' of size {}",
            job_info.name,
            job_info.ranks.len()
        );
        let dst_global = job_info.ranks[dst_local as usize];
        let dst_node = self.ranks[dst_global as usize].node;
        if bytes >= self.eager_threshold {
            // Rendezvous: announce with a small RTS; the payload moves
            // only after the receiver matches and answers with a CTS.
            let rts = self.fabric.send_message(
                &mut self.q,
                u64::from(rank),
                src_node,
                dst_node,
                RENDEZVOUS_CTRL_BYTES,
            );
            self.meta.insert(
                rts,
                WireMeta {
                    job,
                    src_local,
                    dst_local,
                    tag,
                    bytes,
                    kind: WireKind::Rts { payload: bytes },
                    seq: None,
                },
            );
            self.rendezvous_sends.insert(rts.0, (rank, bytes, dst_node));
            self.ranks[rank as usize].outstanding += 1;
            return;
        }
        let msg = self
            .fabric
            .send_message(&mut self.q, u64::from(rank), src_node, dst_node, bytes);
        // Every eager payload is sequenced per (src, dst) pair, with or
        // without a reliability layer: the switch's k-server routing stage
        // legitimately reorders packet completions, so a later, shorter
        // message can finish before an earlier one — the receiver must
        // resequence or MPI's non-overtaking rule breaks (the invariant
        // auditor caught exactly that on the saturated ladder rungs).
        let seq = {
            let counters = &mut self.ranks[rank as usize].seq_send;
            if counters.len() <= dst_global as usize {
                counters.resize(dst_global as usize + 1, 0);
            }
            let seq = counters[dst_global as usize];
            counters[dst_global as usize] += 1;
            seq
        };
        if let Some(rel) = self.reliability {
            let token = self.next_token;
            self.next_token += 1;
            let meta = WireMeta {
                job,
                src_local,
                dst_local,
                tag,
                bytes,
                kind: WireKind::Eager,
                seq: Some(seq),
            };
            self.pending_sends.insert(
                token,
                PendingSend {
                    meta,
                    src_global: rank,
                    src_node,
                    dst_node,
                    seq,
                    attempts: 1,
                    current_msg: msg,
                },
            );
            self.msg_token.insert(msg, token);
            self.q.schedule_after(
                rel.retransmit_timeout,
                WorldEvent::RetransmitTimer { token },
            );
        }
        self.meta.insert(
            msg,
            WireMeta {
                job,
                src_local,
                dst_local,
                tag,
                bytes,
                kind: WireKind::Eager,
                seq: Some(seq),
            },
        );
        self.send_owner.insert(msg, rank);
        #[cfg(feature = "audit")]
        {
            // Stamp the send with the channel's next issue index so
            // delivery can verify non-overtaking independently of the
            // resequencing buffer that enforces it.
            if let Some(a) = self.audit.as_deref_mut() {
                let chan = (pair_key(rank, dst_global), tag);
                let issue = {
                    let c = a.issue_next.entry(chan).or_insert(0);
                    let v = *c;
                    *c += 1;
                    v
                };
                a.seq_issue
                    .insert((pair_key(rank, dst_global), seq), (chan, issue));
            }
        }
        self.ranks[rank as usize].outstanding += 1;
    }

    /// Sends the CTS answering handshake `rts_id` from the receiver back
    /// to the sender.
    fn send_cts(&mut self, receiver: u32, rts_id: u64) {
        let (sender_rank, _, _) = self.rendezvous_sends[&rts_id];
        let (job, dst_local, dst_node) = {
            let r = &self.ranks[receiver as usize];
            (r.job, r.local, r.node)
        };
        let sender_node = self.ranks[sender_rank as usize].node;
        let cts = self.fabric.send_message(
            &mut self.q,
            u64::from(receiver),
            dst_node,
            sender_node,
            RENDEZVOUS_CTRL_BYTES,
        );
        self.meta.insert(
            cts,
            WireMeta {
                job,
                src_local: dst_local,
                dst_local: self.ranks[sender_rank as usize].local,
                tag: 0,
                bytes: RENDEZVOUS_CTRL_BYTES,
                kind: WireKind::Cts { answer: rts_id },
                seq: None,
            },
        );
        self.awaiting_data.insert(rts_id, receiver);
    }

    fn inject_collective(&mut self, rank: u32, kind: CollKind) {
        let (job, local, seq) = {
            let r = &mut self.ranks[rank as usize];
            assert_eq!(
                r.outstanding, 0,
                "collective entered with outstanding requests (job {:?} local {})",
                r.job, r.local
            );
            let seq = r.coll_seq;
            r.coll_seq = r.coll_seq.wrapping_add(1);
            (r.job, r.local, seq)
        };
        let n = self.jobs[job.0 as usize].ranks.len() as u32;
        // Two tags per instance, cycling within the reserved tag space.
        let tag_base = Op::RESERVED_TAG_BASE + ((seq % (1 << 28)) << 1);
        let ops = match kind {
            CollKind::Barrier => expand_barrier(local, n, tag_base),
            CollKind::Allreduce { bytes } => expand_allreduce(local, n, bytes, tag_base),
            CollKind::Alltoall { bytes_per_pair } => {
                expand_alltoall(local, n, bytes_per_pair, tag_base)
            }
            CollKind::Bcast { root, bytes } => expand_bcast(local, root, n, bytes, tag_base),
            CollKind::Reduce { root, bytes } => expand_reduce(local, root, n, bytes, tag_base),
            CollKind::Allgather { bytes_per_rank } => {
                expand_allgather(local, n, bytes_per_rank, tag_base)
            }
        };
        let r = &mut self.ranks[rank as usize];
        debug_assert!(
            r.injected.is_empty(),
            "collective issued from within a collective expansion"
        );
        r.injected.extend(ops);
    }
}

/// Dense key for a (source, destination) global-rank pair.
fn pair_key(src_global: u32, dst_global: u32) -> u64 {
    (u64::from(src_global) << 32) | u64::from(dst_global)
}

#[derive(Debug, Clone, Copy)]
enum CollKind {
    Barrier,
    Allreduce { bytes: u64 },
    Alltoall { bytes_per_pair: u64 },
    Bcast { root: u32, bytes: u64 },
    Reduce { root: u32, bytes: u64 },
    Allgather { bytes_per_rank: u64 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Src;
    use crate::program::{Looping, Scripted};
    use proptest::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn tiny_world() -> World {
        World::new(SwitchConfig::tiny_deterministic())
    }

    fn boxed(p: impl Program + 'static) -> Box<dyn Program> {
        Box::new(p)
    }

    #[test]
    fn compute_only_job_finishes_at_sum_of_spans() {
        let mut w = tiny_world();
        let job = w.add_job(
            "calc",
            vec![(
                boxed(Scripted::new(vec![
                    Op::Compute(SimDuration::from_nanos(100)),
                    Op::Compute(SimDuration::from_nanos(150)),
                    Op::Stop,
                ])),
                NodeId(0),
            )],
        );
        assert!(w
            .run_until_job_done(job, SimTime::from_nanos(10_000))
            .completed());
        assert_eq!(w.job_finish_time(job), Some(SimTime::from_nanos(250)));
    }

    #[test]
    fn ping_pong_completes_with_exact_latency() {
        let mut w = tiny_world();
        // Rank 0 on node 0 sends 512 B to rank 1 on node 1, which replies.
        // One-way: 512 (nic) + 100 (wire) + 200 (svc) + 512 (egress) + 100
        // (wire) = 1424 ns; round trip 2848 ns.
        let job = w.add_job(
            "pingpong",
            vec![
                (
                    boxed(Scripted::new(vec![
                        Op::Isend {
                            dst: 1,
                            bytes: 512,
                            tag: 0,
                        },
                        Op::Irecv {
                            src: Src::Rank(1),
                            tag: 1,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(0),
                ),
                (
                    boxed(Scripted::new(vec![
                        Op::Irecv {
                            src: Src::Rank(0),
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Isend {
                            dst: 0,
                            bytes: 512,
                            tag: 1,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(1),
                ),
            ],
        );
        assert!(w
            .run_until_job_done(job, SimTime::from_nanos(100_000))
            .completed());
        assert_eq!(w.job_finish_time(job), Some(SimTime::from_nanos(2848)));
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        // Rank 0 computes 10 µs before the barrier; all ranks must leave
        // the barrier after it.
        let mut w = tiny_world();
        let mk = |first_compute: u64| {
            boxed(Scripted::new(vec![
                Op::Compute(SimDuration::from_nanos(first_compute)),
                Op::Barrier,
                Op::Stop,
            ]))
        };
        let job = w.add_job(
            "barrier",
            vec![
                (mk(10_000), NodeId(0)),
                (mk(10), NodeId(1)),
                (mk(10), NodeId(2)),
                (mk(10), NodeId(3)),
            ],
        );
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        let t = w.job_finish_time(job).unwrap();
        assert!(
            t > SimTime::from_nanos(10_000),
            "barrier must not complete before the slowest rank arrives (t={t})"
        );
    }

    #[test]
    fn allreduce_completes_on_non_power_of_two() {
        let mut w = tiny_world();
        let members: Vec<_> = (0..3)
            .map(|i| {
                (
                    boxed(Scripted::new(vec![Op::Allreduce { bytes: 800 }, Op::Stop])),
                    NodeId(i),
                )
            })
            .collect();
        let job = w.add_job("allreduce3", members);
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
    }

    #[test]
    fn alltoall_completes_and_moves_all_pairs() {
        let mut w = tiny_world();
        let members: Vec<_> = (0..4)
            .map(|i| {
                (
                    boxed(Scripted::new(vec![
                        Op::Alltoall {
                            bytes_per_pair: 256,
                        },
                        Op::Stop,
                    ])),
                    NodeId(i),
                )
            })
            .collect();
        let job = w.add_job("a2a", members);
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        // 4 ranks × 3 peers = 12 messages.
        assert_eq!(w.fabric().stats().messages_sent, 12);
        assert_eq!(w.fabric().stats().messages_delivered, 12);
    }

    #[test]
    fn bcast_reduce_allgather_complete() {
        let mut w = tiny_world();
        let members: Vec<_> = (0..6)
            .map(|i| {
                (
                    boxed(Scripted::new(vec![
                        Op::Bcast {
                            root: 2,
                            bytes: 4_000,
                        },
                        Op::Reduce {
                            root: 1,
                            bytes: 2_000,
                        },
                        Op::Allgather {
                            bytes_per_rank: 512,
                        },
                        Op::Stop,
                    ])),
                    NodeId(i % 4),
                )
            })
            .collect();
        let job = w.add_job("rooted", members);
        assert!(w
            .run_until_job_done(job, SimTime::from_secs(10))
            .completed());
    }

    #[test]
    fn rooted_collectives_with_every_root_complete() {
        for root in 0..5u32 {
            let mut w = tiny_world();
            let members: Vec<_> = (0..5)
                .map(|i| {
                    (
                        boxed(Scripted::new(vec![
                            Op::Bcast { root, bytes: 1_000 },
                            Op::Reduce { root, bytes: 1_000 },
                            Op::Stop,
                        ])),
                        NodeId(i % 4),
                    )
                })
                .collect();
            let job = w.add_job("rooted", members);
            assert!(
                w.run_until_job_done(job, SimTime::from_secs(10))
                    .completed(),
                "root {root} deadlocked"
            );
        }
    }

    #[test]
    fn jobs_have_isolated_tag_spaces() {
        // Two jobs exchange with the same tags between the same nodes; the
        // matching must never cross jobs.
        let mut w = tiny_world();
        let mk_sender = || {
            boxed(Scripted::new(vec![
                Op::Isend {
                    dst: 1,
                    bytes: 128,
                    tag: 42,
                },
                Op::WaitAll,
                Op::Stop,
            ]))
        };
        let mk_recver = || {
            boxed(Scripted::new(vec![
                Op::Irecv {
                    src: Src::Rank(0),
                    tag: 42,
                },
                Op::WaitAll,
                Op::Stop,
            ]))
        };
        let a = w.add_job(
            "a",
            vec![(mk_sender(), NodeId(0)), (mk_recver(), NodeId(1))],
        );
        let b = w.add_job(
            "b",
            vec![(mk_sender(), NodeId(0)), (mk_recver(), NodeId(1))],
        );
        w.run_until(SimTime::from_secs(1));
        assert!(w.job_done(a));
        assert!(w.job_done(b));
    }

    #[test]
    fn wildcard_receive_accepts_any_source() {
        let mut w = tiny_world();
        let job = w.add_job(
            "wild",
            vec![
                (
                    boxed(Scripted::new(vec![
                        Op::Irecv {
                            src: Src::Any,
                            tag: 0,
                        },
                        Op::Irecv {
                            src: Src::Any,
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(0),
                ),
                (
                    boxed(Scripted::new(vec![
                        Op::Isend {
                            dst: 0,
                            bytes: 100,
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(1),
                ),
                (
                    boxed(Scripted::new(vec![
                        Op::Isend {
                            dst: 0,
                            bytes: 100,
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(2),
                ),
            ],
        );
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
    }

    #[test]
    fn same_node_ranks_communicate_locally() {
        let mut w = tiny_world();
        let job = w.add_job(
            "local",
            vec![
                (
                    boxed(Scripted::new(vec![
                        Op::Isend {
                            dst: 1,
                            bytes: 2048,
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(0),
                ),
                (
                    boxed(Scripted::new(vec![
                        Op::Irecv {
                            src: Src::Rank(0),
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(0),
                ),
            ],
        );
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        assert_eq!(w.fabric().switch_stats().arrivals, 0);
        assert_eq!(w.fabric().stats().local_messages, 1);
    }

    #[test]
    fn looping_job_runs_to_horizon_without_stopping() {
        let mut w = tiny_world();
        let job = w.add_job(
            "noise",
            vec![
                (
                    boxed(
                        Looping::new(vec![
                            Op::Isend {
                                dst: 1,
                                bytes: 512,
                                tag: 0,
                            },
                            Op::Irecv {
                                src: Src::Rank(1),
                                tag: 0,
                            },
                            Op::WaitAll,
                            Op::Sleep(SimDuration::from_micros(10)),
                        ])
                        .named("ping"),
                    ),
                    NodeId(0),
                ),
                (
                    boxed(
                        Looping::new(vec![
                            Op::Irecv {
                                src: Src::Rank(0),
                                tag: 0,
                            },
                            Op::Isend {
                                dst: 0,
                                bytes: 512,
                                tag: 0,
                            },
                            Op::WaitAll,
                            Op::Sleep(SimDuration::from_micros(10)),
                        ])
                        .named("pong"),
                    ),
                    NodeId(1),
                ),
            ],
        );
        w.run_until(SimTime::from_millis(1));
        assert!(!w.job_done(job));
        // ~1 ms / ~12.8 µs per iteration ≈ 78 exchanges of 2 messages.
        let sent = w.fabric().stats().messages_sent;
        assert!(sent > 100, "expected steady traffic, got {sent} messages");
    }

    #[test]
    fn determinism_across_identical_runs() {
        let run = || {
            let mut w = World::new(SwitchConfig::cab().with_seed(3));
            let members: Vec<_> = (0..8)
                .map(|i| {
                    (
                        boxed(Scripted::new(vec![
                            Op::Alltoall {
                                bytes_per_pair: 4096,
                            },
                            Op::Allreduce { bytes: 1024 },
                            Op::Stop,
                        ])),
                        NodeId(i % 18),
                    )
                })
                .collect();
            let job = w.add_job("det", members);
            assert!(w
                .run_until_job_done(job, SimTime::from_secs(10))
                .completed());
            (w.job_finish_time(job), w.events_processed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn program_ctx_reports_simulated_time() {
        struct TimeProbe {
            times: Rc<RefCell<Vec<SimTime>>>,
            step: u32,
        }
        impl Program for TimeProbe {
            fn next_op(&mut self, ctx: &Ctx) -> Op {
                self.times.borrow_mut().push(ctx.now);
                self.step += 1;
                match self.step {
                    1 => Op::Compute(SimDuration::from_nanos(500)),
                    _ => Op::Stop,
                }
            }
        }
        let times = Rc::new(RefCell::new(Vec::new()));
        let mut w = tiny_world();
        let job = w.add_job(
            "probe",
            vec![(
                Box::new(TimeProbe {
                    times: Rc::clone(&times),
                    step: 0,
                }) as Box<dyn Program>,
                NodeId(0),
            )],
        );
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        let t = times.borrow();
        assert_eq!(t[0], SimTime::ZERO);
        assert_eq!(t[1], SimTime::from_nanos(500));
    }

    #[test]
    #[should_panic(expected = "outside job")]
    fn isend_outside_job_panics() {
        let mut w = tiny_world();
        let job = w.add_job(
            "bad",
            vec![(
                boxed(Scripted::new(vec![Op::Isend {
                    dst: 5,
                    bytes: 1,
                    tag: 0,
                }])),
                NodeId(0),
            )],
        );
        w.run_until_job_done(job, SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "cannot add jobs")]
    fn adding_jobs_after_start_panics() {
        let mut w = tiny_world();
        let job = w.add_job(
            "first",
            vec![(boxed(Scripted::new(vec![Op::Stop])), NodeId(0))],
        );
        w.run_until_job_done(job, SimTime::from_secs(1));
        w.add_job(
            "late",
            vec![(boxed(Scripted::new(vec![Op::Stop])), NodeId(0))],
        );
    }

    #[test]
    fn job_finish_time_is_none_while_running() {
        let mut w = tiny_world();
        let job = w.add_job(
            "slow",
            vec![(
                boxed(Scripted::new(vec![
                    Op::Compute(SimDuration::from_secs(5)),
                    Op::Stop,
                ])),
                NodeId(0),
            )],
        );
        w.run_until(SimTime::from_secs(1));
        assert!(!w.job_done(job));
        assert_eq!(w.job_finish_time(job), None);
    }

    #[test]
    fn rendezvous_roundtrip_completes() {
        let mut w = tiny_world();
        let job = w.add_job(
            "rdv",
            vec![
                (
                    boxed(Scripted::new(vec![
                        Op::Isend {
                            dst: 1,
                            bytes: 8_192,
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(0),
                ),
                (
                    boxed(Scripted::new(vec![
                        Op::Irecv {
                            src: Src::Rank(0),
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(1),
                ),
            ],
        );
        w.set_eager_threshold(4_096);
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        // RTS + CTS + payload = three wire messages.
        assert_eq!(w.fabric().stats().messages_sent, 3);
        assert_eq!(w.fabric().stats().messages_delivered, 3);
    }

    #[test]
    fn rendezvous_send_blocks_until_receiver_posts() {
        // The defining semantic difference from eager: a large send cannot
        // complete before the receiver matches. The receiver computes
        // 500 µs before posting; the sender's WaitAll must outlast that.
        let mut w = tiny_world();
        let job = w.add_job(
            "late-recv",
            vec![
                (
                    boxed(Scripted::new(vec![
                        Op::Isend {
                            dst: 1,
                            bytes: 8_192,
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(0),
                ),
                (
                    boxed(Scripted::new(vec![
                        Op::Compute(SimDuration::from_micros(500)),
                        Op::Irecv {
                            src: Src::Rank(0),
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(1),
                ),
            ],
        );
        w.set_eager_threshold(4_096);
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        // The *sender* (rank 0) stops only after CTS returns, i.e. well
        // past the receiver's 500 µs compute.
        let sender_stop = { w.job_finish_time(job).unwrap() };
        assert!(
            sender_stop > SimTime::from_micros(500),
            "rendezvous must wait for the late receiver (stopped {sender_stop})"
        );
    }

    #[test]
    fn eager_send_completes_before_receiver_posts() {
        // Control experiment for the rendezvous test: with the default
        // eager protocol, the sender finishes long before the receiver
        // posts its receive.
        let mut w = tiny_world();
        let sender_stop = Rc::new(RefCell::new(SimTime::ZERO));
        struct StopProbe {
            inner: Scripted,
            stop_at: Rc<RefCell<SimTime>>,
        }
        impl Program for StopProbe {
            fn next_op(&mut self, ctx: &Ctx) -> Op {
                let op = self.inner.next_op(ctx);
                if matches!(op, Op::Stop) {
                    *self.stop_at.borrow_mut() = ctx.now;
                }
                op
            }
        }
        let job = w.add_job(
            "eager-early",
            vec![
                (
                    Box::new(StopProbe {
                        inner: Scripted::new(vec![
                            Op::Isend {
                                dst: 1,
                                bytes: 8_192,
                                tag: 0,
                            },
                            Op::WaitAll,
                            Op::Stop,
                        ]),
                        stop_at: Rc::clone(&sender_stop),
                    }) as Box<dyn Program>,
                    NodeId(0),
                ),
                (
                    boxed(Scripted::new(vec![
                        Op::Compute(SimDuration::from_micros(500)),
                        Op::Irecv {
                            src: Src::Rank(0),
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(1),
                ),
            ],
        );
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        assert!(
            *sender_stop.borrow() < SimTime::from_micros(100),
            "eager sender must finish on injection (stopped {})",
            sender_stop.borrow()
        );
    }

    #[test]
    fn mixed_eager_and_rendezvous_traffic() {
        let mut w = tiny_world();
        let job = w.add_job(
            "mixed",
            vec![
                (
                    boxed(Scripted::new(vec![
                        Op::Isend {
                            dst: 1,
                            bytes: 128, // eager
                            tag: 1,
                        },
                        Op::Isend {
                            dst: 1,
                            bytes: 16_384, // rendezvous
                            tag: 2,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(0),
                ),
                (
                    boxed(Scripted::new(vec![
                        Op::Irecv {
                            src: Src::Rank(0),
                            tag: 2,
                        },
                        Op::Irecv {
                            src: Src::Rank(0),
                            tag: 1,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(1),
                ),
            ],
        );
        w.set_eager_threshold(4_096);
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        // 1 eager + RTS + CTS + payload.
        assert_eq!(w.fabric().stats().messages_sent, 4);
    }

    #[test]
    fn collectives_work_under_rendezvous() {
        let mut w = tiny_world();
        let members: Vec<_> = (0..4)
            .map(|i| {
                (
                    boxed(Scripted::new(vec![
                        Op::Allreduce { bytes: 60_000 },
                        Op::Alltoall {
                            bytes_per_pair: 50_000,
                        },
                        Op::Stop,
                    ])),
                    NodeId(i),
                )
            })
            .collect();
        let job = w.add_job("coll-rdv", members);
        w.set_eager_threshold(8_192);
        assert!(w
            .run_until_job_done(job, SimTime::from_secs(10))
            .completed());
    }

    #[test]
    #[should_panic(expected = "before running")]
    fn protocol_split_is_fixed_after_start() {
        let mut w = tiny_world();
        let job = w.add_job("j", vec![(boxed(Scripted::new(vec![Op::Stop])), NodeId(0))]);
        w.run_until_job_done(job, SimTime::from_secs(1));
        w.set_eager_threshold(1);
    }

    #[test]
    fn tracing_attributes_compute_time() {
        let mut w = tiny_world();
        let job = w.add_job(
            "calc",
            vec![(
                boxed(Scripted::new(vec![
                    Op::Compute(SimDuration::from_micros(100)),
                    Op::Stop,
                ])),
                NodeId(0),
            )],
        );
        w.enable_tracing();
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        let t = w.job_phase_totals(job);
        assert!(
            t.computing_fraction() > 0.99,
            "pure compute must account as computing: {t:?}"
        );
        assert_eq!(t.waiting_ns, 0);
    }

    #[test]
    fn tracing_attributes_network_wait() {
        let mut w = tiny_world();
        // Rank 0 waits for a message that only arrives after rank 1
        // computes 100 µs: almost all of rank 0's time is Waiting.
        let job = w.add_job(
            "waity",
            vec![
                (
                    boxed(Scripted::new(vec![
                        Op::Irecv {
                            src: Src::Rank(1),
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(0),
                ),
                (
                    boxed(Scripted::new(vec![
                        Op::Compute(SimDuration::from_micros(100)),
                        Op::Isend {
                            dst: 0,
                            bytes: 64,
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(1),
                ),
            ],
        );
        w.enable_tracing();
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        let waiter = w.rank_phase_totals(0);
        assert!(
            waiter.waiting_fraction() > 0.95,
            "receiver must account as waiting: {waiter:?}"
        );
        let sender = w.rank_phase_totals(1);
        assert!(sender.computing_fraction() > 0.95, "{sender:?}");
    }

    #[test]
    fn tracing_disabled_reports_zeros() {
        let mut w = tiny_world();
        let job = w.add_job(
            "calc",
            vec![(
                boxed(Scripted::new(vec![
                    Op::Compute(SimDuration::from_micros(10)),
                    Op::Stop,
                ])),
                NodeId(0),
            )],
        );
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        assert_eq!(w.job_phase_totals(job).total_ns(), 0);
    }

    // ------------------------------------------------------------------
    // Run outcomes, fault tolerance, and stall diagnostics.

    use anp_simnet::{FaultPlan, FaultWindow, LinkFault, LinkId, LinkSelector};

    #[test]
    fn deadline_expiry_is_distinct_from_completion() {
        let mut w = tiny_world();
        let job = w.add_job(
            "slow",
            vec![(
                boxed(Scripted::new(vec![
                    Op::Compute(SimDuration::from_secs(5)),
                    Op::Stop,
                ])),
                NodeId(0),
            )],
        );
        let outcome = w.run_until_job_done(job, SimTime::from_secs(1));
        let RunOutcome::DeadlineExpired(report) = outcome else {
            panic!("expected DeadlineExpired, got {outcome:?}");
        };
        assert_eq!(report.blocked.len(), 1);
        assert_eq!(report.blocked[0].waiting_on, BlockedOn::Computing);
        assert!(report.failed_sends.is_empty());
    }

    #[test]
    fn stall_report_names_the_blocked_recv() {
        // Rank 0 waits for a message nobody sends: the queue drains and
        // the report must name the rank and its unmatched selector.
        let mut w = tiny_world();
        let job = w.add_job(
            "orphan",
            vec![
                (
                    boxed(Scripted::new(vec![
                        Op::Irecv {
                            src: Src::Rank(1),
                            tag: 9,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(0),
                ),
                (boxed(Scripted::new(vec![Op::Stop])), NodeId(1)),
            ],
        );
        let outcome = w.run_until_job_done(job, SimTime::from_secs(1));
        let RunOutcome::Stalled(report) = outcome else {
            panic!("expected Stalled, got {outcome:?}");
        };
        assert_eq!(report.blocked.len(), 1);
        assert_eq!(report.blocked[0].local, 0);
        assert_eq!(
            report.blocked[0].waiting_on,
            BlockedOn::WaitAll {
                outstanding: 1,
                pending_recvs: vec![(Src::Rank(1), 9)],
            }
        );
        // The rendered report is meant for humans; spot-check it.
        let text = report.to_string();
        assert!(text.contains("rank 0"), "{text}");
        assert!(text.contains("tag 9"), "{text}");
    }

    #[test]
    fn event_budget_trips_deterministically() {
        // The same ping-pong with a tight event cap must stop at the same
        // event count every time, and report BudgetExhausted — distinct
        // from both deadline expiry and a stall.
        let run = |cap: Option<u64>| {
            let (mut w, job) = ping_pong_world(FaultPlan::none(), 50);
            w.set_run_budget(cap, None);
            let outcome = w.run_until_job_done(job, SimTime::from_secs(1));
            (outcome, w.events_processed(), w.budget_exhausted())
        };
        let (clean, clean_events, clean_flag) = run(None);
        assert!(clean.completed());
        assert!(!clean_flag);
        let cap = clean_events / 2;
        let (a, ea, fa) = run(Some(cap));
        let (b, eb, fb) = run(Some(cap));
        assert!(fa && fb);
        assert_eq!(ea, eb, "event budget must trip at a fixed event");
        assert_eq!(ea, cap);
        let RunOutcome::BudgetExhausted(report) = a else {
            panic!("expected BudgetExhausted, got {a:?}");
        };
        assert_eq!(b.stall_report(), Some(&report), "reports must match");
        assert!(!report.blocked.is_empty());
    }

    #[test]
    fn zero_event_budget_trips_before_any_work() {
        let (mut w, job) = ping_pong_world(FaultPlan::none(), 1);
        w.set_run_budget(Some(0), None);
        let outcome = w.run_until_job_done(job, SimTime::from_secs(1));
        assert!(matches!(outcome, RunOutcome::BudgetExhausted(_)));
        assert_eq!(w.events_processed(), 0);
    }

    #[test]
    fn expired_wall_deadline_stops_run_until() {
        let mut w = tiny_world();
        w.add_job(
            "busy",
            vec![(
                boxed(Scripted::new(vec![
                    Op::Compute(SimDuration::from_secs(5)),
                    Op::Stop,
                ])),
                NodeId(0),
            )],
        );
        // A deadline already in the past trips on the very first check.
        w.set_run_budget(None, Some(std::time::Instant::now()));
        w.run_until(SimTime::from_secs(1));
        assert!(w.budget_exhausted());
        assert_eq!(w.events_processed(), 0);
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let (mut w, job) = ping_pong_world(FaultPlan::none(), 3);
        w.set_run_budget(None, None);
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        assert!(!w.budget_exhausted());
    }

    fn ping_pong_world(plan: FaultPlan, rounds: usize) -> (World, JobId) {
        let mut w = World::new(SwitchConfig::tiny_deterministic().with_fault_plan(plan));
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..rounds {
            a.extend([
                Op::Isend {
                    dst: 1,
                    bytes: 512,
                    tag: 0,
                },
                Op::Irecv {
                    src: Src::Rank(1),
                    tag: 0,
                },
                Op::WaitAll,
            ]);
            b.extend([
                Op::Irecv {
                    src: Src::Rank(0),
                    tag: 0,
                },
                Op::WaitAll,
                Op::Isend {
                    dst: 0,
                    bytes: 512,
                    tag: 0,
                },
                Op::WaitAll,
            ]);
        }
        a.push(Op::Stop);
        b.push(Op::Stop);
        let job = w.add_job(
            "pingpong",
            vec![
                (boxed(Scripted::new(a)), NodeId(0)),
                (boxed(Scripted::new(b)), NodeId(1)),
            ],
        );
        (w, job)
    }

    #[test]
    fn reliability_layer_is_inert_on_a_lossless_fabric() {
        let (mut w, job) = ping_pong_world(FaultPlan::none(), 1);
        w.set_reliability(ReliabilityConfig::default());
        let outcome = w.run_until_job_done(job, SimTime::from_secs(1));
        // Sequencing and timers must not change message timing at all.
        assert_eq!(
            outcome,
            RunOutcome::Completed {
                at: SimTime::from_nanos(2848)
            }
        );
        assert_eq!(w.reliability_stats(), ReliabilityStats::default());
    }

    #[test]
    fn lossy_ping_pong_completes_via_retransmission() {
        let run = || {
            let (mut w, job) = ping_pong_world(FaultPlan::uniform_loss(0.2).with_seed(11), 50);
            w.set_reliability(ReliabilityConfig {
                retransmit_timeout: SimDuration::from_micros(10),
                max_retries: 10,
            });
            let outcome = w.run_until_job_done(job, SimTime::from_secs(10));
            assert!(outcome.completed(), "lossy run must recover: {outcome:?}");
            let stats = w.reliability_stats();
            assert!(stats.retransmits > 0, "20% loss must force retransmits");
            assert_eq!(stats.failures, 0);
            // Every one of the 100 application messages was eventually
            // handed to matching exactly once (the job completing all its
            // WaitAlls proves delivery; stats prove loss happened).
            assert!(w.fabric().stats().messages_dropped > 0);
            (w.job_finish_time(job), w.events_processed(), stats)
        };
        assert_eq!(run(), run(), "recovery must be deterministic");
    }

    #[test]
    fn dead_link_exhausts_retries_and_later_traffic_still_drains() {
        // Node 0's uplink is dead for the first 50 µs. Message A (sent at
        // t=0, small retry budget) dies inside the window; message B (sent
        // after a 60 µs compute) sails through. The failed send must void
        // its sequence number so B can still be delivered, and the stall
        // report must name both the failure and the orphaned recv.
        let fault = LinkFault::on(LinkSelector::Link(LinkId::NodeUp(NodeId(0))))
            .with_down(FaultWindow::new(SimTime::ZERO, SimTime::from_micros(50)));
        let mut w = World::new(
            SwitchConfig::tiny_deterministic()
                .with_fault_plan(FaultPlan::none().with_link_fault(fault)),
        );
        w.set_reliability(ReliabilityConfig {
            retransmit_timeout: SimDuration::from_micros(10),
            max_retries: 1,
        });
        let job = w.add_job(
            "partial",
            vec![
                (
                    boxed(Scripted::new(vec![
                        Op::Isend {
                            dst: 1,
                            bytes: 512,
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Compute(SimDuration::from_micros(60)),
                        Op::Isend {
                            dst: 1,
                            bytes: 512,
                            tag: 1,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(0),
                ),
                (
                    boxed(Scripted::new(vec![
                        Op::Irecv {
                            src: Src::Rank(0),
                            tag: 0,
                        },
                        Op::Irecv {
                            src: Src::Rank(0),
                            tag: 1,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(1),
                ),
            ],
        );
        let outcome = w.run_until_job_done(job, SimTime::from_secs(1));
        let RunOutcome::Stalled(report) = outcome else {
            panic!("expected Stalled, got {outcome:?}");
        };
        assert_eq!(w.reliability_stats().failures, 1);
        assert_eq!(report.failed_sends.len(), 1);
        let failed = &report.failed_sends[0];
        assert_eq!(
            (failed.src, failed.dst, failed.tag, failed.seq),
            (0, 1, 0, 0)
        );
        assert_eq!(failed.attempts, 2, "1 original + 1 retry");
        // Message B was delivered despite A's failure: the receiver's only
        // unmatched recv is A's.
        assert_eq!(report.blocked.len(), 1);
        assert_eq!(report.blocked[0].local, 1);
        assert_eq!(
            report.blocked[0].waiting_on,
            BlockedOn::WaitAll {
                outstanding: 1,
                pending_recvs: vec![(Src::Rank(0), 0)],
            }
        );
    }

    #[test]
    fn collectives_survive_a_lossy_fabric() {
        let mut w = World::new(
            SwitchConfig::tiny_deterministic()
                .with_fault_plan(FaultPlan::uniform_loss(0.1).with_seed(5)),
        );
        w.set_reliability(ReliabilityConfig {
            retransmit_timeout: SimDuration::from_micros(10),
            max_retries: 10,
        });
        let members: Vec<_> = (0..4)
            .map(|i| {
                (
                    boxed(Scripted::new(vec![
                        Op::Allreduce { bytes: 800 },
                        Op::Barrier,
                        Op::Alltoall {
                            bytes_per_pair: 256,
                        },
                        Op::Stop,
                    ])),
                    NodeId(i),
                )
            })
            .collect();
        let job = w.add_job("coll-lossy", members);
        assert!(w
            .run_until_job_done(job, SimTime::from_secs(10))
            .completed());
        assert!(w.reliability_stats().retransmits > 0);
    }

    #[test]
    fn audit_is_off_by_default_and_reports_none() {
        let (mut w, job) = ping_pong_world(FaultPlan::none(), 2);
        assert!(!w.audit_enabled());
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        assert_eq!(w.take_audit_report(), None);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audited_ping_pong_is_clean_and_traces_events() {
        let (mut w, job) = ping_pong_world(FaultPlan::none(), 5);
        w.enable_audit();
        assert!(w.audit_enabled());
        assert!(w.run_until_job_done(job, SimTime::from_secs(1)).completed());
        let report = w.take_audit_report().expect("audit enabled");
        assert!(report.is_clean(), "unexpected violations: {report}");
        assert!(report.events_audited > 0);
        assert!(
            !report.trace_tail.is_empty(),
            "the flight recorder must capture the event stream"
        );
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audited_run_does_not_change_timing() {
        // The auditor observes; it must never perturb the simulation.
        let (mut plain, job_p) = ping_pong_world(FaultPlan::none(), 5);
        let (mut audited, job_a) = ping_pong_world(FaultPlan::none(), 5);
        audited.enable_audit();
        assert!(plain
            .run_until_job_done(job_p, SimTime::from_secs(1))
            .completed());
        assert!(audited
            .run_until_job_done(job_a, SimTime::from_secs(1))
            .completed());
        assert_eq!(plain.job_finish_time(job_p), audited.job_finish_time(job_a));
        assert_eq!(plain.events_processed(), audited.events_processed());
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audited_lossy_retransmission_run_is_clean() {
        // Loss + retransmission exercises every invariant the auditor
        // guards: credits returned on drop paths, voided sequence numbers,
        // duplicate suppression, and the resequencing window.
        let (mut w, job) = ping_pong_world(FaultPlan::uniform_loss(0.2).with_seed(11), 50);
        w.set_reliability(ReliabilityConfig {
            retransmit_timeout: SimDuration::from_micros(10),
            max_retries: 10,
        });
        w.enable_audit();
        assert!(w
            .run_until_job_done(job, SimTime::from_secs(10))
            .completed());
        assert!(w.reliability_stats().retransmits > 0);
        let report = w.take_audit_report().expect("audit enabled");
        assert!(report.is_clean(), "unexpected violations: {report}");
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audited_failed_send_with_voided_seq_is_clean() {
        // A send abandoned after its retry budget voids its sequence
        // number; the window invariant must treat that as legal.
        let fault = LinkFault::on(LinkSelector::Link(LinkId::NodeUp(NodeId(0))))
            .with_down(FaultWindow::new(SimTime::ZERO, SimTime::from_micros(50)));
        let mut w = World::new(
            SwitchConfig::tiny_deterministic()
                .with_fault_plan(FaultPlan::none().with_link_fault(fault)),
        );
        w.set_reliability(ReliabilityConfig {
            retransmit_timeout: SimDuration::from_micros(10),
            max_retries: 1,
        });
        w.enable_audit();
        let job = w.add_job(
            "partial",
            vec![
                (
                    boxed(Scripted::new(vec![
                        Op::Isend {
                            dst: 1,
                            bytes: 512,
                            tag: 0,
                        },
                        Op::WaitAll,
                        Op::Compute(SimDuration::from_micros(60)),
                        Op::Isend {
                            dst: 1,
                            bytes: 512,
                            tag: 1,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(0),
                ),
                (
                    boxed(Scripted::new(vec![
                        Op::Irecv {
                            src: Src::Rank(0),
                            tag: 1,
                        },
                        Op::WaitAll,
                        Op::Stop,
                    ])),
                    NodeId(1),
                ),
            ],
        );
        let outcome = w.run_until_job_done(job, SimTime::from_secs(1));
        assert!(
            outcome.completed(),
            "B must deliver past A's voided seq: {outcome:?}"
        );
        assert_eq!(w.reliability_stats().failures, 1);
        let report = w.take_audit_report().expect("audit enabled");
        assert!(report.is_clean(), "unexpected violations: {report}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Allreduce and barrier complete without deadlock for arbitrary
        /// job sizes and node placements.
        #[test]
        fn prop_collectives_complete(n in 2u32..14, per_node in 1u32..4) {
            let mut w = tiny_world();
            let members: Vec<_> = (0..n)
                .map(|i| {
                    (
                        boxed(Scripted::new(vec![
                            Op::Allreduce { bytes: 256 },
                            Op::Barrier,
                            Op::Stop,
                        ])),
                        NodeId((i / per_node) % 4),
                    )
                })
                .collect();
            let job = w.add_job("coll", members);
            prop_assert!(w.run_until_job_done(job, SimTime::from_secs(60)).completed());
        }

        /// A random mesh of paired sends/recvs always drains: for every
        /// (src, dst) exchange both sides are generated, so WaitAll can
        /// never hang.
        #[test]
        fn prop_paired_p2p_completes(
            pairs in proptest::collection::vec((0u32..6, 0u32..6, 1u64..5_000), 1..20)
        ) {
            let n = 6u32;
            // sends[i] = list of (dst, bytes); recvs[i] = list of srcs.
            let mut sends = vec![Vec::new(); n as usize];
            let mut recvs = vec![Vec::new(); n as usize];
            for (a, b, bytes) in &pairs {
                sends[*a as usize].push((*b, *bytes));
                recvs[*b as usize].push(*a);
            }
            let mut w = tiny_world();
            let members: Vec<_> = (0..n)
                .map(|i| {
                    let mut ops = Vec::new();
                    for src in &recvs[i as usize] {
                        ops.push(Op::Irecv { src: Src::Rank(*src), tag: 0 });
                    }
                    for (dst, bytes) in &sends[i as usize] {
                        ops.push(Op::Isend { dst: *dst, bytes: *bytes, tag: 0 });
                    }
                    ops.push(Op::WaitAll);
                    ops.push(Op::Stop);
                    (boxed(Scripted::new(ops)), NodeId(i % 4))
                })
                .collect();
            let job = w.add_job("mesh", members);
            prop_assert!(w.run_until_job_done(job, SimTime::from_secs(60)).completed());
            prop_assert_eq!(
                w.fabric().stats().messages_sent,
                pairs.len() as u64
            );
        }
    }
}
