//! The operation alphabet ranks execute.
//!
//! A rank's behaviour is a stream of [`Op`]s produced by its
//! [`Program`](crate::program::Program). The set mirrors the MPI subset the
//! paper's pseudo-code uses (Figs. 2 and 5): non-blocking point-to-point,
//! waits, and the collectives the six applications need.

use anp_simnet::SimDuration;

/// Source selector for a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Receive only from this job-local rank.
    Rank(u32),
    /// Receive from any rank (`MPI_ANY_SOURCE`).
    Any,
}

impl Src {
    /// True if a message from `src` satisfies this selector.
    pub fn matches(self, src: u32) -> bool {
        match self {
            Src::Rank(r) => r == src,
            Src::Any => true,
        }
    }
}

/// One operation issued by a rank. All rank numbers are job-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Advance this rank's clock by `0`: do useful CPU work for the span.
    Compute(SimDuration),
    /// Advance this rank's clock while idle (`usleep` in the paper's
    /// micro-benchmarks). Identical to `Compute` for the simulation; kept
    /// distinct for intent and tracing.
    Sleep(SimDuration),
    /// Non-blocking send of `bytes` to `dst` with tag `tag`
    /// (`MPI_Isend`). Completes locally when the last packet leaves the
    /// NIC (eager protocol).
    Isend {
        /// Destination job-local rank.
        dst: u32,
        /// Payload bytes.
        bytes: u64,
        /// Match tag. Must be below [`Op::RESERVED_TAG_BASE`].
        tag: u32,
    },
    /// Non-blocking receive (`MPI_Irecv`). Completes when a matching
    /// message has fully arrived.
    Irecv {
        /// Source selector.
        src: Src,
        /// Match tag. Must be below [`Op::RESERVED_TAG_BASE`].
        tag: u32,
    },
    /// Block until every outstanding request on this rank has completed
    /// (`MPI_Waitall` over everything posted since the last wait).
    WaitAll,
    /// Synchronize all ranks of the job (`MPI_Barrier`). Must be called
    /// with no outstanding requests.
    Barrier,
    /// Reduce-to-all of a `bytes`-sized buffer (`MPI_Allreduce`),
    /// lowered to recursive doubling. Must be called with no outstanding
    /// requests.
    Allreduce {
        /// Buffer size in bytes.
        bytes: u64,
    },
    /// Personalized all-to-all exchange (`MPI_Alltoall`) of
    /// `bytes_per_pair` to every other rank, lowered to windowed pairwise
    /// exchange. Must be called with no outstanding requests.
    Alltoall {
        /// Bytes sent to each peer.
        bytes_per_pair: u64,
    },
    /// One-to-all broadcast (`MPI_Bcast`), lowered to a binomial tree.
    /// Must be called with no outstanding requests.
    Bcast {
        /// Job-local root rank.
        root: u32,
        /// Buffer size in bytes.
        bytes: u64,
    },
    /// All-to-one reduction (`MPI_Reduce`), lowered to a binomial tree.
    /// Must be called with no outstanding requests.
    Reduce {
        /// Job-local root rank.
        root: u32,
        /// Buffer size in bytes.
        bytes: u64,
    },
    /// All-gather (`MPI_Allgather`) of `bytes_per_rank` from every rank,
    /// lowered to a ring. Must be called with no outstanding requests.
    Allgather {
        /// Bytes contributed by each rank.
        bytes_per_rank: u64,
    },
    /// Terminate this rank; its stop time is recorded as the job's
    /// completion time contribution.
    Stop,
}

impl Op {
    /// Tags at or above this value are reserved for collective lowering.
    /// User code must tag point-to-point traffic below it.
    pub const RESERVED_TAG_BASE: u32 = 1 << 30;

    /// True for operations that can block the rank.
    pub fn is_blocking(&self) -> bool {
        matches!(
            self,
            Op::Compute(_)
                | Op::Sleep(_)
                | Op::WaitAll
                | Op::Barrier
                | Op::Allreduce { .. }
                | Op::Alltoall { .. }
                | Op::Bcast { .. }
                | Op::Reduce { .. }
                | Op::Allgather { .. }
                | Op::Stop
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn src_matching() {
        assert!(Src::Any.matches(0));
        assert!(Src::Any.matches(99));
        assert!(Src::Rank(3).matches(3));
        assert!(!Src::Rank(3).matches(4));
    }

    #[test]
    fn blocking_classification() {
        assert!(Op::WaitAll.is_blocking());
        assert!(Op::Barrier.is_blocking());
        assert!(Op::Stop.is_blocking());
        assert!(Op::Bcast { root: 0, bytes: 1 }.is_blocking());
        assert!(Op::Reduce { root: 0, bytes: 1 }.is_blocking());
        assert!(Op::Allgather { bytes_per_rank: 1 }.is_blocking());
        assert!(Op::Compute(SimDuration::from_nanos(1)).is_blocking());
        assert!(!Op::Isend {
            dst: 0,
            bytes: 1,
            tag: 0
        }
        .is_blocking());
        assert!(!Op::Irecv {
            src: Src::Any,
            tag: 0
        }
        .is_blocking());
    }
}
