//! # anp-simmpi — message-passing layer over the simulated switch
//!
//! An MPI-like substrate for `anp-simnet`: ranks, jobs, non-blocking
//! point-to-point communication with MPI matching semantics, and the
//! collectives the paper's applications need (barrier, allreduce,
//! alltoall), all lowered to packets through the simulated switch.
//!
//! This crate replaces the "thin MPI bindings plus cluster" the original
//! study relied on. A rank's behaviour is a [`Program`]: a pull-based
//! stream of [`Op`]s (compute spans, `Isend`/`Irecv`/`WaitAll`,
//! collectives) executed cooperatively by the [`World`]. Because ranks are
//! state machines on one deterministic event queue — not OS threads — the
//! same configuration always produces the same run.
//!
//! Protocol notes (documented simplifications):
//!
//! * **Eager everywhere.** Sends complete when the last packet leaves the
//!   source NIC; receivers buffer unexpected messages without flow control.
//!   All messages in the paper's workloads are ≤ 40 KB — inside the eager
//!   domain of real MPI stacks on InfiniBand.
//! * **Collectives may not overlap p2p.** A rank entering a collective must
//!   have no outstanding requests (asserted). The paper's six proxy
//!   applications and both micro-benchmarks respect this by construction.
//!
//! ## Quick example
//!
//! ```
//! use anp_simmpi::{World, Op, Src, Scripted, Program};
//! use anp_simnet::{NodeId, SimTime, SwitchConfig};
//!
//! let mut world = World::new(SwitchConfig::tiny_deterministic());
//! let tx = Scripted::new(vec![
//!     Op::Isend { dst: 1, bytes: 1024, tag: 0 },
//!     Op::WaitAll,
//!     Op::Stop,
//! ]);
//! let rx = Scripted::new(vec![
//!     Op::Irecv { src: Src::Rank(0), tag: 0 },
//!     Op::WaitAll,
//!     Op::Stop,
//! ]);
//! let job = world.add_job("hello", vec![
//!     (Box::new(tx) as Box<dyn Program>, NodeId(0)),
//!     (Box::new(rx) as Box<dyn Program>, NodeId(1)),
//! ]);
//! assert!(world.run_until_job_done(job, SimTime::from_secs(1)).completed());
//! ```
//!
//! `run_until_job_done` returns a [`RunOutcome`]: completion, deadline
//! expiry, or a stall — the two failure cases carrying a [`StallReport`]
//! naming each blocked rank and what it waits on. On a lossy fabric (see
//! `anp_simnet::FaultPlan`), enable the retransmitting reliability layer
//! with [`World::set_reliability`].

#![warn(missing_docs)]

pub mod coll;
pub mod op;
pub mod p2p;
pub mod program;
pub mod trace;
pub mod world;

pub use op::{Op, Src};
pub use program::{Ctx, Looping, Program, Scripted};
pub use trace::{PhaseTotals, RankPhase, TraceLog};
pub use world::{
    BlockedOn, BlockedRank, FailedSend, JobId, ReliabilityConfig, ReliabilityStats, RunOutcome,
    StallReport, World, WorldEvent,
};
