//! Point-to-point message matching: posted receives vs. unexpected
//! messages, with MPI ordering semantics.

use std::collections::VecDeque;

use crate::op::Src;

/// A message (or rendezvous announcement) waiting to be matched at the
/// destination rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Job-local source rank.
    pub src: u32,
    /// Match tag.
    pub tag: u32,
    /// Payload size.
    pub bytes: u64,
    /// For rendezvous traffic: the handshake id of the RTS this envelope
    /// announces. `None` for eager messages, whose payload has already
    /// arrived when the envelope matches.
    pub rendezvous: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct PostedRecv {
    src: Src,
    tag: u32,
}

/// Per-rank matching engine.
///
/// Semantics follow MPI: a receive matches the *earliest* unexpected
/// message satisfying its `(src, tag)` selector; an arriving message
/// matches the earliest posted receive that accepts it. Messages between
/// the same (src, dst, tag) triple are non-overtaking because the fabric
/// delivers a sender's packets in order and matching is FIFO.
#[derive(Debug, Default)]
pub struct Mailbox {
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Envelope>,
}

impl Mailbox {
    /// Posts a receive. Returns `Some(envelope)` if an already-arrived
    /// message matches (the receive completes immediately); `None` if the
    /// receive is now pending.
    pub fn post(&mut self, src: Src, tag: u32) -> Option<Envelope> {
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|e| src.matches(e.src) && e.tag == tag)
        {
            return self.unexpected.remove(pos);
        }
        self.posted.push_back(PostedRecv { src, tag });
        None
    }

    /// Delivers an arrived message. Returns `true` if it completed a
    /// posted receive, `false` if it was queued as unexpected.
    pub fn deliver(&mut self, env: Envelope) -> bool {
        if let Some(pos) = self
            .posted
            .iter()
            .position(|r| r.src.matches(env.src) && r.tag == env.tag)
        {
            self.posted.remove(pos);
            true
        } else {
            self.unexpected.push_back(env);
            false
        }
    }

    /// Receives posted but not yet matched.
    pub fn pending_recvs(&self) -> usize {
        self.posted.len()
    }

    /// The `(source, tag)` selectors of every unmatched posted receive, in
    /// posting order (stall diagnostics).
    pub fn posted_descriptors(&self) -> Vec<(Src, u32)> {
        self.posted.iter().map(|r| (r.src, r.tag)).collect()
    }

    /// Messages arrived but not yet matched.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn env(src: u32, tag: u32) -> Envelope {
        Envelope {
            src,
            tag,
            bytes: 64,
            rendezvous: None,
        }
    }

    #[test]
    fn recv_before_message() {
        let mut mb = Mailbox::default();
        assert!(mb.post(Src::Rank(1), 7).is_none());
        assert!(mb.deliver(env(1, 7)), "must match the posted recv");
        assert_eq!(mb.pending_recvs(), 0);
        assert_eq!(mb.unexpected_len(), 0);
    }

    #[test]
    fn message_before_recv() {
        let mut mb = Mailbox::default();
        assert!(!mb.deliver(env(2, 5)), "no recv posted: unexpected");
        let got = mb.post(Src::Rank(2), 5);
        assert_eq!(got, Some(env(2, 5)));
    }

    #[test]
    fn tag_mismatch_does_not_match() {
        let mut mb = Mailbox::default();
        mb.post(Src::Rank(1), 7);
        assert!(!mb.deliver(env(1, 8)));
        assert_eq!(mb.pending_recvs(), 1);
        assert_eq!(mb.unexpected_len(), 1);
    }

    #[test]
    fn src_mismatch_does_not_match() {
        let mut mb = Mailbox::default();
        mb.post(Src::Rank(1), 7);
        assert!(!mb.deliver(env(2, 7)));
    }

    #[test]
    fn wildcard_source_matches_anyone() {
        let mut mb = Mailbox::default();
        mb.post(Src::Any, 3);
        assert!(mb.deliver(env(42, 3)));
    }

    #[test]
    fn fifo_matching_of_unexpected() {
        let mut mb = Mailbox::default();
        mb.deliver(env(1, 0));
        mb.deliver(env(2, 0));
        // A wildcard recv must take the earliest arrival.
        assert_eq!(mb.post(Src::Any, 0).unwrap().src, 1);
        assert_eq!(mb.post(Src::Any, 0).unwrap().src, 2);
    }

    #[test]
    fn fifo_matching_of_posted() {
        let mut mb = Mailbox::default();
        mb.post(Src::Any, 0); // recv A
        mb.post(Src::Rank(1), 0); // recv B
                                  // A message from rank 1 matches recv A (posted earlier, wildcard).
        assert!(mb.deliver(env(1, 0)));
        assert_eq!(mb.pending_recvs(), 1);
        // Next message from rank 1 matches recv B.
        assert!(mb.deliver(env(1, 0)));
        assert_eq!(mb.pending_recvs(), 0);
    }

    #[test]
    fn same_source_messages_do_not_overtake() {
        let mut mb = Mailbox::default();
        mb.deliver(Envelope {
            src: 1,
            tag: 0,
            bytes: 111,
            rendezvous: None,
        });
        mb.deliver(Envelope {
            src: 1,
            tag: 0,
            bytes: 222,
            rendezvous: None,
        });
        assert_eq!(mb.post(Src::Rank(1), 0).unwrap().bytes, 111);
        assert_eq!(mb.post(Src::Rank(1), 0).unwrap().bytes, 222);
    }

    proptest! {
        /// Conservation: every delivery either matches a posted recv or
        /// lands in the unexpected queue; queue sizes always reconcile.
        #[test]
        fn prop_conservation(
            actions in proptest::collection::vec((0u8..2, 0u32..4, 0u32..3), 0..100)
        ) {
            let mut mb = Mailbox::default();
            let mut posts = 0u64;
            let mut delivers = 0u64;
            let mut matched = 0u64;
            for (kind, src, tag) in actions {
                if kind == 0 {
                    if mb.post(Src::Rank(src), tag).is_some() {
                        matched += 1;
                    }
                    posts += 1;
                } else {
                    if mb.deliver(Envelope { src, tag, bytes: 1, rendezvous: None }) {
                        matched += 1;
                    }
                    delivers += 1;
                }
            }
            prop_assert_eq!(mb.pending_recvs() as u64, posts - matched);
            prop_assert_eq!(mb.unexpected_len() as u64, delivers - matched);
        }
    }
}
