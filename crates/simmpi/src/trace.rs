//! Per-rank time accounting: where does each rank's time go?
//!
//! The paper's related work (§VI) contrasts its active probing with
//! tracing tools like Vampir and Paraver. This module provides the
//! minimal, always-consistent core of such a tool for the simulated world:
//! every rank's wall time is attributed to *computing* (inside
//! `Compute`/`Sleep` spans), *waiting* (blocked in `WaitAll`, i.e. on the
//! network), or *running* (executing operations, effectively zero-width in
//! this model but kept for completeness).
//!
//! The breakdown answers the calibration question behind every proxy
//! application: what fraction of the runtime is exposed to network
//! behaviour? A rank that waits 60 % of its time can slow down by at most
//! ~2.5× however bad the switch gets; one that waits 2 % is immune.

use anp_simnet::SimTime;

/// The accounting states a rank can be in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankPhase {
    /// Executing a `Compute` or `Sleep` span.
    Computing,
    /// Blocked in `WaitAll` — exposed to network latency.
    Waiting,
    /// Ready/executing operations (instantaneous in this model).
    Running,
}

/// Accumulated nanoseconds per phase for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Time inside compute/sleep spans.
    pub computing_ns: u64,
    /// Time blocked on communication.
    pub waiting_ns: u64,
    /// Everything else (op execution, idle-ready).
    pub running_ns: u64,
}

impl PhaseTotals {
    /// Total accounted time.
    pub fn total_ns(&self) -> u64 {
        self.computing_ns + self.waiting_ns + self.running_ns
    }

    /// Fraction of accounted time spent waiting on the network
    /// (0 when nothing is accounted yet).
    pub fn waiting_fraction(&self) -> f64 {
        let t = self.total_ns();
        if t == 0 {
            0.0
        } else {
            self.waiting_ns as f64 / t as f64
        }
    }

    /// Fraction of accounted time spent computing.
    pub fn computing_fraction(&self) -> f64 {
        let t = self.total_ns();
        if t == 0 {
            0.0
        } else {
            self.computing_ns as f64 / t as f64
        }
    }
}

/// Phase accounting for every rank of a world. Disabled by default; when
/// disabled every call is a no-op so the hot path pays one branch.
#[derive(Debug, Default)]
pub struct TraceLog {
    enabled: bool,
    /// Per rank: current phase and when it started.
    current: Vec<(RankPhase, SimTime)>,
    totals: Vec<PhaseTotals>,
}

impl TraceLog {
    /// Creates a disabled log (ranks register lazily on enable).
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Turns accounting on for `ranks` ranks starting at `now`.
    pub fn enable(&mut self, ranks: usize, now: SimTime) {
        self.enabled = true;
        self.current = vec![(RankPhase::Running, now); ranks];
        self.totals = vec![PhaseTotals::default(); ranks];
    }

    /// True when accounting is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records that `rank` entered `phase` at `now`, closing its previous
    /// phase span. No-op when disabled.
    pub fn transition(&mut self, rank: u32, phase: RankPhase, now: SimTime) {
        if !self.enabled {
            return;
        }
        let (prev, since) = self.current[rank as usize];
        let span = now.saturating_since(since).as_nanos();
        let t = &mut self.totals[rank as usize];
        match prev {
            RankPhase::Computing => t.computing_ns += span,
            RankPhase::Waiting => t.waiting_ns += span,
            RankPhase::Running => t.running_ns += span,
        }
        self.current[rank as usize] = (phase, now);
    }

    /// Snapshot of one rank's totals, with the open span closed at `now`.
    pub fn totals_at(&self, rank: u32, now: SimTime) -> PhaseTotals {
        if !self.enabled {
            return PhaseTotals::default();
        }
        let mut t = self.totals[rank as usize];
        let (phase, since) = self.current[rank as usize];
        let span = now.saturating_since(since).as_nanos();
        match phase {
            RankPhase::Computing => t.computing_ns += span,
            RankPhase::Waiting => t.waiting_ns += span,
            RankPhase::Running => t.running_ns += span,
        }
        t
    }

    /// Aggregated totals over a set of ranks at `now`.
    pub fn aggregate_at(&self, ranks: &[u32], now: SimTime) -> PhaseTotals {
        let mut agg = PhaseTotals::default();
        for &r in ranks {
            let t = self.totals_at(r, now);
            agg.computing_ns += t.computing_ns;
            agg.waiting_ns += t.waiting_ns;
            agg.running_ns += t.running_ns;
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_is_inert() {
        let mut log = TraceLog::new();
        assert!(!log.is_enabled());
        log.transition(0, RankPhase::Computing, SimTime::from_nanos(5));
        assert_eq!(
            log.totals_at(0, SimTime::from_nanos(10)),
            PhaseTotals::default()
        );
    }

    #[test]
    fn spans_accumulate_per_phase() {
        let mut log = TraceLog::new();
        log.enable(1, SimTime::ZERO);
        log.transition(0, RankPhase::Computing, SimTime::from_nanos(10)); // ran 10
        log.transition(0, RankPhase::Waiting, SimTime::from_nanos(110)); // computed 100
        log.transition(0, RankPhase::Running, SimTime::from_nanos(160)); // waited 50
        let t = log.totals_at(0, SimTime::from_nanos(200)); // running 40 open
        assert_eq!(t.computing_ns, 100);
        assert_eq!(t.waiting_ns, 50);
        assert_eq!(t.running_ns, 50);
        assert_eq!(t.total_ns(), 200);
        assert!((t.waiting_fraction() - 0.25).abs() < 1e-12);
        assert!((t.computing_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_sums_ranks() {
        let mut log = TraceLog::new();
        log.enable(2, SimTime::ZERO);
        log.transition(0, RankPhase::Computing, SimTime::ZERO);
        log.transition(1, RankPhase::Waiting, SimTime::ZERO);
        let agg = log.aggregate_at(&[0, 1], SimTime::from_nanos(100));
        assert_eq!(agg.computing_ns, 100);
        assert_eq!(agg.waiting_ns, 100);
    }

    #[test]
    fn empty_totals_have_zero_fractions() {
        let t = PhaseTotals::default();
        assert_eq!(t.waiting_fraction(), 0.0);
        assert_eq!(t.computing_fraction(), 0.0);
    }
}
