//! # anp-sched — predictive co-scheduling on measured switch impact
//!
//! The paper measures application footprints and degradation tables so
//! that a batch scheduler can *predict* the cost of co-locating two
//! workloads before placing them. This crate closes that loop: an
//! event-driven cluster simulation where a seeded stream of jobs (the
//! six `anp-workloads` proxies, with arrival times, sizes, and optional
//! slowdown SLOs) arrives at a pool of switches, and pluggable placement
//! policies decide which jobs share a switch.
//!
//! * [`truth`] — the DES-measured ground truth a study stands on: the
//!   look-up table + impact profiles (a [`Study`]) plus the directed
//!   pair-slowdown grid, measured under the supervision envelope so
//!   failed cells become typed holes.
//! * [`cluster`] — the cluster simulation itself: switches with two job
//!   slots, a FIFO wait queue, and per-job progress rates derived from
//!   the measured pair slowdowns. Realized (stretch) slowdown includes
//!   queueing delay, so a policy that defers jobs pays for it.
//! * [`policy`] — the [`PlacementPolicy`] trait and its implementations:
//!   `FirstFit`, `Random`, `SoloOnly`, the exhaustive `Oracle` (peeks at
//!   measured pair slowdowns), and `Predictive` (consults a prediction
//!   model through a measurement backend — the analytic flow engine in
//!   the inner loop for speed, or the DES for reference).
//! * [`predictor`] — the decision-time prediction plumbing: impact
//!   profiles measured lazily through a [`Backend`], so decision latency
//!   is an honest measurement of what a production scheduler would pay.
//! * [`study`] — the experiment driver: streams over a seed set, every
//!   policy on every stream, per-policy regret vs the oracle.
//! * [`report`] — deterministic schedule/summary tables and the
//!   `anp-bench-v5` telemetry records.
//!
//! [`Study`]: anp_core::Study
//! [`Backend`]: anp_core::Backend
//! [`PlacementPolicy`]: policy::PlacementPolicy

#![warn(missing_docs)]

pub mod cluster;
pub mod policy;
pub mod predictor;
pub mod report;
pub mod study;
pub mod truth;

use anp_core::{ExperimentError, JournalError, PredictionError};
use anp_workloads::AppKind;

pub use cluster::{simulate, JobRow, ScheduleOutcome, SLOTS_PER_SWITCH};
pub use policy::{
    DecisionStats, FirstFit, Oracle, PlacementPolicy, Predictive, Probed, Random, SoloOnly,
    SwitchSnapshot,
};
pub use predictor::Predictor;
pub use report::{oracle_mean, records, render_schedule, render_summary, SchedRecord};
pub use study::{
    default_specs, gated_ladder, run_suite, stream_for, DecisionEngine, PolicyOutcome, PolicySpec,
    StudyOpts,
};
pub use truth::{measure_truth_supervised, GroundTruth, TruthCampaign};

/// Why a scheduling step could not proceed.
#[derive(Debug)]
pub enum SchedError {
    /// A prediction (or measured pair value) was unavailable.
    Prediction(PredictionError),
    /// A decision-time measurement through the backend failed.
    Experiment(ExperimentError),
    /// The run journal rejected or failed the campaign.
    Journal(JournalError),
    /// The ground truth has no solo baseline for an application.
    MissingSolo {
        /// The application without a baseline.
        app: AppKind,
    },
    /// A policy chose a switch that does not exist or has no free slot.
    InvalidChoice {
        /// The offending policy.
        policy: String,
        /// The chosen switch index.
        switch: usize,
    },
    /// The simulation wedged: jobs were queued, nothing was running, and
    /// the policy still refused to place — a policy bug by definition,
    /// since an all-empty cluster must accept any job.
    Stalled {
        /// Jobs stranded in the wait queue.
        queued: usize,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Prediction(e) => write!(f, "prediction unavailable: {e}"),
            SchedError::Experiment(e) => write!(f, "decision-time measurement failed: {e}"),
            SchedError::Journal(e) => write!(f, "journal error: {e}"),
            SchedError::MissingSolo { app } => {
                write!(f, "no solo baseline for {} in the ground truth", app.name())
            }
            SchedError::InvalidChoice { policy, switch } => {
                write!(
                    f,
                    "policy {policy} chose switch {switch} without a free slot"
                )
            }
            SchedError::Stalled { queued } => write!(
                f,
                "scheduler stalled with {queued} queued job(s) and an idle cluster"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<PredictionError> for SchedError {
    fn from(e: PredictionError) -> Self {
        SchedError::Prediction(e)
    }
}

impl From<ExperimentError> for SchedError {
    fn from(e: ExperimentError) -> Self {
        SchedError::Experiment(e)
    }
}

impl From<JournalError> for SchedError {
    fn from(e: JournalError) -> Self {
        SchedError::Journal(e)
    }
}
