//! The event-driven cluster simulation the policies are judged on.
//!
//! A pool of switches, each with [`SLOTS_PER_SWITCH`] job slots, receives
//! a time-ordered stream of jobs. A [`PlacementPolicy`] decides, at each
//! arrival (and again whenever a completion frees a slot), which switch a
//! job lands on — or defers it to a FIFO wait queue. While two jobs share
//! a switch, each runs at a reduced rate derived from the *measured*
//! pair-slowdown grid, so the realized schedule is DES-validated ground
//! truth, not a model's opinion of itself. A job's realized (stretch)
//! slowdown is measured from its arrival, so queueing delay counts: a
//! policy cannot look good by deferring every job.
//!
//! The loop is serial and the clock is plain `f64` microseconds; with a
//! seeded stream and deterministic policies the whole schedule table is
//! byte-identical run to run, which is what the CLI determinism test
//! pins.
//!
//! [`PlacementPolicy`]: crate::policy::PlacementPolicy

use std::collections::BTreeMap;
use std::collections::VecDeque;

use anp_simnet::SimDuration;
use anp_workloads::AppKind;

use crate::policy::{PlacementPolicy, SwitchSnapshot};
use crate::SchedError;
use anp_core::PredictionError;
use anp_workloads::arrivals::JobSpec;

/// Job slots per switch. Two, matching the paper's pairing study: the
/// measured ground truth covers solo runs and ordered pairs, so a switch
/// never holds more jobs than the measurement grid can price.
pub const SLOTS_PER_SWITCH: usize = 2;

/// One job's realized schedule: where it ran, when, and how much it
/// stretched relative to its solo ideal.
#[derive(Debug, Clone)]
pub struct JobRow {
    /// Stream id of the job.
    pub id: u32,
    /// The application the job runs.
    pub app: AppKind,
    /// Size multiplier on the solo runtime.
    pub size: f64,
    /// Arrival time (µs).
    pub arrival_us: f64,
    /// Placement time (µs); equals `arrival_us` unless the job queued.
    pub placed_us: f64,
    /// Completion time (µs).
    pub finish_us: f64,
    /// The switch the job ran on.
    pub switch: usize,
    /// Realized stretch: `(turnaround / ideal − 1) × 100`, where ideal is
    /// the solo runtime scaled by the job size. Queue wait included.
    pub stretch_pct: f64,
    /// Whether the job carried a slowdown SLO and the realized stretch
    /// broke it.
    pub slo_violated: bool,
}

/// The realized schedule of one stream under one policy.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Per-job rows, stream order.
    pub rows: Vec<JobRow>,
    /// Completion time of the last job (µs).
    pub makespan_us: f64,
    /// Mean realized stretch across all jobs (%).
    pub mean_stretch_pct: f64,
    /// Jobs whose slowdown SLO was broken.
    pub slo_violations: usize,
    /// Jobs that spent time in the wait queue.
    pub queued: usize,
}

struct ActiveJob {
    switch: usize,
    /// Remaining work, in µs of solo-rate execution.
    remaining: f64,
    /// Current progress rate (solo = 1.0).
    rate: f64,
}

/// Progress rate of a job co-located with `partner_slowdowns` (the
/// measured % slowdown each partner inflicts on it). Solo runs at 1.0;
/// a partner inflicting +25% runs it at 1/1.25 = 0.8. Summed slowdowns
/// are floored at −50% (a co-runner can help, but not double the rate of
/// everything) and the rate is clamped to a sane band so a corrupted
/// measurement cannot wedge the clock.
fn rate_under(partner_slowdowns: &[f64]) -> f64 {
    let total: f64 = partner_slowdowns.iter().sum();
    (1.0 / (1.0 + (total / 100.0).max(-0.5))).clamp(0.05, 4.0)
}

/// Runs `stream` (time-ordered) through `policy` on a pool of `switches`
/// switches, progressing every job at the rate the measured pair grid
/// dictates.
///
/// `solos` and `pairs` are the ground truth: solo runtimes per app and
/// the directed measured pair slowdowns (`(victim, other)` → %). A
/// pairing the policy creates that the grid never measured is a typed
/// error — the realized schedule refuses to invent physics.
pub fn simulate(
    solos: &BTreeMap<AppKind, SimDuration>,
    pairs: &BTreeMap<(AppKind, AppKind), f64>,
    stream: &[JobSpec],
    switches: usize,
    policy: &mut dyn PlacementPolicy,
) -> Result<ScheduleOutcome, SchedError> {
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(switches > 0, "a cluster needs at least one switch");

    let policy_name = policy.name();
    let solo_us = |app: AppKind| -> Result<f64, SchedError> {
        solos
            .get(&app)
            .map(|d| d.as_micros_f64())
            .ok_or(SchedError::MissingSolo { app })
    };
    let slowdown = |victim: AppKind, other: AppKind| -> Result<f64, SchedError> {
        pairs
            .get(&(victim, other))
            .copied()
            .ok_or(SchedError::Prediction(PredictionError::Unmeasured {
                victim,
                other,
            }))
    };

    let mut rows: Vec<JobRow> = stream
        .iter()
        .map(|j| JobRow {
            id: j.id,
            app: j.app,
            size: j.size,
            arrival_us: j.arrival_us as f64,
            placed_us: f64::NAN,
            finish_us: f64::NAN,
            switch: usize::MAX,
            stretch_pct: f64::NAN,
            slo_violated: false,
        })
        .collect();

    let mut residents: Vec<Vec<usize>> = vec![Vec::new(); switches];
    let mut active: BTreeMap<usize, ActiveJob> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut now = 0.0f64;
    let mut next_arrival = 0usize;
    let mut ever_queued = 0usize;

    // Recomputes the rates of every job on `switch` from the measured
    // pair grid (call after any membership change).
    let refresh = |switch: usize,
                   residents: &Vec<Vec<usize>>,
                   active: &mut BTreeMap<usize, ActiveJob>,
                   rows: &[JobRow]|
     -> Result<(), SchedError> {
        let members = &residents[switch];
        for &i in members {
            let mut inflicted = Vec::new();
            for &p in members {
                if p != i {
                    inflicted.push(slowdown(rows[i].app, rows[p].app)?);
                }
            }
            active
                .get_mut(&i)
                // anp-lint: allow(D003) — scheduler ledger invariant: `residents` and `active` are updated in lockstep; divergence is bookkeeping corruption that must halt
                .expect("resident job must be active")
                .rate = rate_under(&inflicted);
        }
        Ok(())
    };

    // Places job `i` on `switch` at time `now`.
    let place = |i: usize,
                 switch: usize,
                 now: f64,
                 residents: &mut Vec<Vec<usize>>,
                 active: &mut BTreeMap<usize, ActiveJob>,
                 rows: &mut [JobRow]|
     -> Result<(), SchedError> {
        if switch >= residents.len() || residents[switch].len() >= SLOTS_PER_SWITCH {
            return Err(SchedError::InvalidChoice {
                policy: String::new(),
                switch,
            });
        }
        let work = solo_us(rows[i].app)? * rows[i].size;
        rows[i].placed_us = now;
        rows[i].switch = switch;
        residents[switch].push(i);
        active.insert(
            i,
            ActiveJob {
                switch,
                remaining: work,
                rate: 1.0,
            },
        );
        Ok(())
    };

    let snapshot = |residents: &Vec<Vec<usize>>, rows: &[JobRow]| -> Vec<SwitchSnapshot> {
        residents
            .iter()
            .map(|members| SwitchSnapshot {
                residents: members.iter().map(|&i| rows[i].app).collect(),
                capacity: SLOTS_PER_SWITCH,
            })
            .collect()
    };

    loop {
        // Next completion: earliest projected finish among active jobs,
        // job index as the deterministic tiebreak.
        let completion = active
            .iter()
            .map(|(&i, j)| (now + j.remaining / j.rate, i))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let arrival = stream.get(next_arrival).map(|j| j.arrival_us as f64);

        let take_completion = match (completion, arrival) {
            (Some((tc, _)), Some(ta)) => tc <= ta,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => {
                if queue.is_empty() {
                    break;
                }
                // Queued jobs, an idle cluster, and no event that could
                // change the policy's mind: wedged by construction.
                return Err(SchedError::Stalled {
                    queued: queue.len(),
                });
            }
        };

        if take_completion {
            // anp-lint: allow(D003) — locally proven: guarded by the explicit check a few lines above
            let (tc, done) = completion.expect("checked above");
            let dt = tc - now;
            for j in active.values_mut() {
                j.remaining = (j.remaining - j.rate * dt).max(0.0);
            }
            now = tc;

            // anp-lint: allow(D003) — scheduler ledger invariant: `residents` and `active` are updated in lockstep; divergence is bookkeeping corruption that must halt
            let job = active.remove(&done).expect("completing job is active");
            residents[job.switch].retain(|&i| i != done);
            let ideal = solo_us(rows[done].app)? * rows[done].size;
            rows[done].finish_us = now;
            rows[done].stretch_pct = ((now - rows[done].arrival_us) / ideal - 1.0) * 100.0;
            if let Some(slo) = stream[done].slo_slowdown {
                rows[done].slo_violated = rows[done].stretch_pct > slo * 100.0;
            }
            refresh(job.switch, &residents, &mut active, &rows)?;

            // A slot opened: offer the queue head (and only the head —
            // FIFO fairness) until the policy defers again.
            while let Some(&head) = queue.front() {
                let snaps = snapshot(&residents, &rows);
                match policy.choose(&stream[head], &snaps)? {
                    Some(s) => {
                        queue.pop_front();
                        place(head, s, now, &mut residents, &mut active, &mut rows)
                            .map_err(|e| annotate_choice(e, &policy_name))?;
                        refresh(s, &residents, &mut active, &rows)?;
                    }
                    None => break,
                }
            }
        } else {
            let i = next_arrival;
            next_arrival += 1;
            let ta = stream[i].arrival_us as f64;
            let dt = ta - now;
            for j in active.values_mut() {
                j.remaining = (j.remaining - j.rate * dt).max(0.0);
            }
            now = ta;

            if queue.is_empty() {
                let snaps = snapshot(&residents, &rows);
                match policy.choose(&stream[i], &snaps)? {
                    Some(s) => {
                        place(i, s, now, &mut residents, &mut active, &mut rows)
                            .map_err(|e| annotate_choice(e, &policy_name))?;
                        refresh(s, &residents, &mut active, &rows)?;
                    }
                    None => {
                        queue.push_back(i);
                        ever_queued += 1;
                    }
                }
            } else {
                // Jobs already wait; newcomers line up behind them.
                queue.push_back(i);
                ever_queued += 1;
            }
        }
    }

    let makespan_us = rows.iter().map(|r| r.finish_us).fold(0.0, f64::max);
    let mean_stretch_pct = if rows.is_empty() {
        0.0
    } else {
        rows.iter().map(|r| r.stretch_pct).sum::<f64>() / rows.len() as f64
    };
    let slo_violations = rows.iter().filter(|r| r.slo_violated).count();
    Ok(ScheduleOutcome {
        rows,
        makespan_us,
        mean_stretch_pct,
        slo_violations,
        queued: ever_queued,
    })
}

fn annotate_choice(e: SchedError, policy_name: &str) -> SchedError {
    match e {
        SchedError::InvalidChoice { switch, .. } => SchedError::InvalidChoice {
            policy: policy_name.to_owned(),
            switch,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FirstFit, SoloOnly};

    fn solos() -> BTreeMap<AppKind, SimDuration> {
        BTreeMap::from([
            (AppKind::Fftw, SimDuration::from_micros(1_000)),
            (AppKind::Milc, SimDuration::from_micros(2_000)),
        ])
    }

    fn pairs() -> BTreeMap<(AppKind, AppKind), f64> {
        BTreeMap::from([
            ((AppKind::Fftw, AppKind::Fftw), 50.0),
            ((AppKind::Fftw, AppKind::Milc), 20.0),
            ((AppKind::Milc, AppKind::Fftw), 10.0),
            ((AppKind::Milc, AppKind::Milc), 5.0),
        ])
    }

    fn job(id: u32, app: AppKind, arrival_us: u64) -> JobSpec {
        JobSpec {
            id,
            app,
            arrival_us,
            size: 1.0,
            slo_slowdown: None,
        }
    }

    #[test]
    fn solo_job_finishes_at_its_ideal() {
        let stream = [job(0, AppKind::Fftw, 100)];
        let out = simulate(&solos(), &pairs(), &stream, 2, &mut FirstFit).unwrap();
        let r = &out.rows[0];
        assert_eq!(r.placed_us, 100.0);
        assert!((r.finish_us - 1_100.0).abs() < 1e-9);
        assert!(r.stretch_pct.abs() < 1e-9);
        assert_eq!(out.queued, 0);
        assert_eq!(out.slo_violations, 0);
    }

    #[test]
    fn shared_switch_stretches_both_by_the_measured_grid() {
        // Both arrive at t=0; FirstFit pairs them on switch 0. FFTW is
        // slowed 20% by MILC, MILC 10% by FFTW.
        let stream = [job(0, AppKind::Fftw, 0), job(1, AppKind::Milc, 0)];
        let out = simulate(&solos(), &pairs(), &stream, 2, &mut FirstFit).unwrap();
        assert_eq!(out.rows[0].switch, 0);
        assert_eq!(out.rows[1].switch, 0);
        // FFTW: 1000 µs of work at rate 1/1.2 until done at t=1200.
        assert!((out.rows[0].finish_us - 1_200.0).abs() < 1e-6);
        assert!((out.rows[0].stretch_pct - 20.0).abs() < 1e-6);
        // MILC: slowed 10% while FFTW runs (1200 µs → 2000/1.1 rate…):
        // work done by t=1200 is 1200/1.1; the rest runs solo.
        let milc_finish = 1_200.0 + (2_000.0 - 1_200.0 / 1.1);
        assert!((out.rows[1].finish_us - milc_finish).abs() < 1e-6);
        assert!(out.rows[1].stretch_pct > 0.0);
    }

    #[test]
    fn queueing_delay_counts_toward_stretch() {
        // One switch, solo-only policy: the second job waits its turn.
        let stream = [job(0, AppKind::Fftw, 0), job(1, AppKind::Fftw, 0)];
        let out = simulate(&solos(), &pairs(), &stream, 1, &mut SoloOnly).unwrap();
        assert_eq!(out.queued, 1);
        assert_eq!(out.rows[0].finish_us, 1_000.0);
        assert_eq!(out.rows[1].placed_us, 1_000.0);
        assert_eq!(out.rows[1].finish_us, 2_000.0);
        // Waited 1000 µs on a 1000 µs job: +100% stretch.
        assert!((out.rows[1].stretch_pct - 100.0).abs() < 1e-9);
        assert_eq!(out.makespan_us, 2_000.0);
    }

    #[test]
    fn slo_violations_are_counted() {
        let mut stream = [job(0, AppKind::Fftw, 0), job(1, AppKind::Fftw, 0)];
        stream[1].slo_slowdown = Some(0.5); // tolerates +50%, will see +100%
        let out = simulate(&solos(), &pairs(), &stream, 1, &mut SoloOnly).unwrap();
        assert_eq!(out.slo_violations, 1);
        assert!(out.rows[1].slo_violated);
        assert!(!out.rows[0].slo_violated);
    }

    #[test]
    fn refusing_every_placement_is_a_typed_stall() {
        struct Never;
        impl PlacementPolicy for Never {
            fn name(&self) -> String {
                "never".into()
            }
            fn choose(
                &mut self,
                _job: &JobSpec,
                _switches: &[SwitchSnapshot],
            ) -> Result<Option<usize>, SchedError> {
                Ok(None)
            }
        }
        let stream = [job(0, AppKind::Fftw, 0)];
        let err = simulate(&solos(), &pairs(), &stream, 1, &mut Never).unwrap_err();
        assert!(matches!(err, SchedError::Stalled { queued: 1 }));
    }

    #[test]
    fn out_of_range_choice_is_a_typed_error() {
        struct Wild;
        impl PlacementPolicy for Wild {
            fn name(&self) -> String {
                "wild".into()
            }
            fn choose(
                &mut self,
                _job: &JobSpec,
                _switches: &[SwitchSnapshot],
            ) -> Result<Option<usize>, SchedError> {
                Ok(Some(99))
            }
        }
        let stream = [job(0, AppKind::Fftw, 0)];
        let err = simulate(&solos(), &pairs(), &stream, 1, &mut Wild).unwrap_err();
        match err {
            SchedError::InvalidChoice { policy, switch } => {
                assert_eq!(policy, "wild");
                assert_eq!(switch, 99);
            }
            other => panic!("expected InvalidChoice, got {other}"),
        }
    }

    #[test]
    fn unmeasured_pairing_refuses_to_invent_physics() {
        let mut sparse = pairs();
        sparse.remove(&(AppKind::Fftw, AppKind::Milc));
        let stream = [job(0, AppKind::Fftw, 0), job(1, AppKind::Milc, 0)];
        let err = simulate(&solos(), &sparse, &stream, 1, &mut FirstFit).unwrap_err();
        assert!(matches!(err, SchedError::Prediction(_)));
    }

    #[test]
    fn rate_floor_survives_poisoned_measurements() {
        assert_eq!(rate_under(&[1e9]), 0.05);
        assert_eq!(rate_under(&[-1e9]), 2.0);
        assert!((rate_under(&[]) - 1.0).abs() < 1e-12);
    }
}
