//! Placement policies: who shares a switch with whom.
//!
//! A [`PlacementPolicy`] is consulted once per placement opportunity —
//! at a job's arrival, and again for the queue head whenever a
//! completion frees a slot — with a snapshot of every switch's current
//! residents. It answers with a switch index, or `None` to defer the job
//! to the FIFO wait queue.
//!
//! Baselines bracket the design space: [`FirstFit`] packs greedily and
//! ignores interference, [`Random`] scatters (seeded, reproducible),
//! [`SoloOnly`] never shares a switch and pays the queueing bill, and
//! [`Oracle`] peeks at the *measured* pair-slowdown grid — the best any
//! placement can do with this ground truth, and the zero point of the
//! study's regret accounting. [`Predictive`] is the paper's pitch: the
//! same greedy scoring as the oracle, but fed by one of the four
//! prediction models over isolated measurements only.

use std::time::{Duration, Instant};

use anp_core::{ExperimentConfig, LatencyProfile, LookupTable, ModelKind, PredictionError};
use anp_monitor::probed_profile_of_app;
use anp_workloads::arrivals::JobSpec;
use anp_workloads::AppKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

use crate::predictor::Predictor;
use crate::SchedError;

/// What a policy sees of one switch at decision time.
#[derive(Debug, Clone)]
pub struct SwitchSnapshot {
    /// Applications currently running on the switch.
    pub residents: Vec<AppKind>,
    /// Job slots on the switch.
    pub capacity: usize,
}

impl SwitchSnapshot {
    /// Whether the switch can accept one more job.
    pub fn has_free_slot(&self) -> bool {
        self.residents.len() < self.capacity
    }
}

/// Decision-latency accounting for policies that measure at decision
/// time. Baselines report zeros.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecisionStats {
    /// Placement decisions taken.
    pub decisions: u64,
    /// Wall-clock time spent inside [`PlacementPolicy::choose`].
    pub wall: Duration,
}

/// A placement policy: maps (job, cluster state) to a switch, or defers.
pub trait PlacementPolicy {
    /// Display name (also used in telemetry records and error messages).
    fn name(&self) -> String;

    /// Resets per-stream state (RNGs re-seed here so every stream is
    /// reproducible in isolation).
    fn begin_stream(&mut self, _seed: u64) {}

    /// Chooses a switch for `job`, or `None` to defer it to the wait
    /// queue. Must only return switches with a free slot.
    fn choose(
        &mut self,
        job: &JobSpec,
        switches: &[SwitchSnapshot],
    ) -> Result<Option<usize>, SchedError>;

    /// Decision-latency accounting since construction.
    fn decision_stats(&self) -> DecisionStats {
        DecisionStats::default()
    }
}

/// Greedy packing: the first switch with a free slot, interference be
/// damned. The "utilization first" baseline every cluster scheduler
/// starts life as.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> String {
        "first-fit".to_owned()
    }

    fn choose(
        &mut self,
        _job: &JobSpec,
        switches: &[SwitchSnapshot],
    ) -> Result<Option<usize>, SchedError> {
        Ok(switches.iter().position(SwitchSnapshot::has_free_slot))
    }
}

/// Uniform random placement over the switches with a free slot. Seeded
/// and re-seeded per stream, so a fixed stream seed reproduces the same
/// "random" schedule everywhere.
#[derive(Debug)]
pub struct Random {
    rng: StdRng,
}

impl Random {
    /// Stream-seed salt: keeps the policy's draws decorrelated from the
    /// arrival stream generated off the same seed.
    const SALT: u64 = 0x5EED_5A17_0F0F_0001;

    /// Builds the policy with an initial seed (re-seeded by
    /// [`PlacementPolicy::begin_stream`]).
    pub fn new(seed: u64) -> Self {
        Random {
            rng: StdRng::seed_from_u64(seed ^ Self::SALT),
        }
    }
}

impl PlacementPolicy for Random {
    fn name(&self) -> String {
        "random".to_owned()
    }

    fn begin_stream(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed ^ Self::SALT);
    }

    fn choose(
        &mut self,
        _job: &JobSpec,
        switches: &[SwitchSnapshot],
    ) -> Result<Option<usize>, SchedError> {
        let free: Vec<usize> = (0..switches.len())
            .filter(|&i| switches[i].has_free_slot())
            .collect();
        if free.is_empty() {
            return Ok(None);
        }
        Ok(Some(free[self.rng.gen_range(0..free.len())]))
    }
}

/// Never shares a switch: the first *empty* switch, else defer. Zero
/// interference, maximal queueing — the other end of the trade-off from
/// [`FirstFit`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SoloOnly;

impl PlacementPolicy for SoloOnly {
    fn name(&self) -> String {
        "solo-only".to_owned()
    }

    fn choose(
        &mut self,
        _job: &JobSpec,
        switches: &[SwitchSnapshot],
    ) -> Result<Option<usize>, SchedError> {
        Ok(switches.iter().position(|s| s.residents.is_empty()))
    }
}

/// Exhaustive greedy placement over the *measured* pair-slowdown grid:
/// for each free-slot switch, the total extra slowdown created (job's
/// own plus what it inflicts on every resident); picks the cheapest,
/// lowest index on ties. This peeks at ground truth no deployable
/// scheduler has — it exists to anchor the regret accounting at zero.
#[derive(Debug)]
pub struct Oracle<'a> {
    pairs: &'a BTreeMap<(AppKind, AppKind), f64>,
}

impl<'a> Oracle<'a> {
    /// Builds the oracle over the measured pair grid.
    pub fn new(pairs: &'a BTreeMap<(AppKind, AppKind), f64>) -> Self {
        Oracle { pairs }
    }

    fn measured(&self, victim: AppKind, other: AppKind) -> Result<f64, SchedError> {
        self.pairs
            .get(&(victim, other))
            .copied()
            .ok_or(SchedError::Prediction(
                anp_core::PredictionError::Unmeasured { victim, other },
            ))
    }
}

impl PlacementPolicy for Oracle<'_> {
    fn name(&self) -> String {
        "oracle".to_owned()
    }

    fn choose(
        &mut self,
        job: &JobSpec,
        switches: &[SwitchSnapshot],
    ) -> Result<Option<usize>, SchedError> {
        let mut best: Option<(f64, usize)> = None;
        for (i, sw) in switches.iter().enumerate() {
            if !sw.has_free_slot() {
                continue;
            }
            let mut cost = 0.0;
            for &r in &sw.residents {
                cost += self.measured(job.app, r)? + self.measured(r, job.app)?;
            }
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, i));
            }
        }
        Ok(best.map(|(_, i)| i))
    }
}

/// The paper's placement policy: identical greedy scoring to the
/// [`Oracle`], but every slowdown is *predicted* by one of the four
/// models from isolated measurements, with the co-runner's footprint
/// measured through a backend at decision time. The wall clock spent in
/// `choose` is the decision latency a deployment would pay.
#[derive(Debug)]
pub struct Predictive<'a> {
    model: ModelKind,
    predictor: Predictor<'a>,
    decisions: u64,
    wall: Duration,
}

impl<'a> Predictive<'a> {
    /// Builds the policy around a model and a decision-time predictor.
    pub fn new(model: ModelKind, predictor: Predictor<'a>) -> Self {
        Predictive {
            model,
            predictor,
            decisions: 0,
            wall: Duration::ZERO,
        }
    }

    /// The prediction model this instance consults.
    pub fn model(&self) -> ModelKind {
        self.model
    }
}

impl PlacementPolicy for Predictive<'_> {
    fn name(&self) -> String {
        format!(
            "predictive:{}:{}",
            self.model.name(),
            self.predictor.backend_name()
        )
    }

    fn choose(
        &mut self,
        job: &JobSpec,
        switches: &[SwitchSnapshot],
    ) -> Result<Option<usize>, SchedError> {
        let started = Instant::now();
        let mut best: Option<(f64, usize)> = None;
        for (i, sw) in switches.iter().enumerate() {
            if !sw.has_free_slot() {
                continue;
            }
            let mut cost = 0.0;
            for &r in &sw.residents {
                cost += self.predictor.predicted(job.app, r, self.model)?
                    + self.predictor.predicted(r, job.app, self.model)?;
            }
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, i));
            }
        }
        self.decisions += 1;
        self.wall += started.elapsed();
        Ok(best.map(|(_, i)| i))
    }

    fn decision_stats(&self) -> DecisionStats {
        DecisionStats {
            decisions: self.decisions,
            wall: self.wall,
        }
    }
}

/// Placement from the *online monitor* instead of the offline campaign:
/// co-runner footprints come from [`anp_monitor::probed_profile_of_app`]
/// — the jittered probe train co-running with the application inside the
/// DES — and flow through the same four models and the same greedy
/// scoring as [`Predictive`]. This is the policy a deployment could
/// actually run: it needs only the calibrated look-up table and a live
/// probe stream, never a dedicated measurement campaign per co-runner.
///
/// Probed profiles are memoized per application (a production monitor
/// keeps estimating the same resident for free), so the decision wall
/// clock reflects first-contact probing plus model evaluation.
#[derive(Debug)]
pub struct Probed<'a> {
    model: ModelKind,
    cfg: &'a ExperimentConfig,
    table: &'a LookupTable,
    profiles: BTreeMap<AppKind, LatencyProfile>,
    decisions: u64,
    wall: Duration,
}

impl<'a> Probed<'a> {
    /// Builds the policy around a model, the probe/fabric configuration,
    /// and the calibrated look-up table the models interpolate in.
    pub fn new(model: ModelKind, cfg: &'a ExperimentConfig, table: &'a LookupTable) -> Self {
        Probed {
            model,
            cfg,
            table,
            profiles: BTreeMap::new(),
            decisions: 0,
            wall: Duration::ZERO,
        }
    }

    /// The prediction model this instance consults.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    fn predicted(&mut self, victim: AppKind, other: AppKind) -> Result<f64, SchedError> {
        if !self.profiles.contains_key(&other) {
            let profile = probed_profile_of_app(self.cfg, other)?;
            self.profiles.insert(other, profile);
        }
        let profile = &self.profiles[&other];
        self.model
            .model()
            .predict(self.table, victim, profile)
            .ok_or(SchedError::Prediction(PredictionError::NoPrediction {
                victim,
                model: self.model,
            }))
    }
}

impl PlacementPolicy for Probed<'_> {
    fn name(&self) -> String {
        format!("probed:{}", self.model.name())
    }

    fn choose(
        &mut self,
        job: &JobSpec,
        switches: &[SwitchSnapshot],
    ) -> Result<Option<usize>, SchedError> {
        let started = Instant::now();
        let mut best: Option<(f64, usize)> = None;
        for (i, sw) in switches.iter().enumerate() {
            if !sw.has_free_slot() {
                continue;
            }
            let mut cost = 0.0;
            for &r in &sw.residents {
                cost += self.predicted(job.app, r)? + self.predicted(r, job.app)?;
            }
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, i));
            }
        }
        self.decisions += 1;
        self.wall += started.elapsed();
        Ok(best.map(|(_, i)| i))
    }

    fn decision_stats(&self) -> DecisionStats {
        DecisionStats {
            decisions: self.decisions,
            wall: self.wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(residents: &[AppKind]) -> SwitchSnapshot {
        SwitchSnapshot {
            residents: residents.to_vec(),
            capacity: 2,
        }
    }

    fn job(app: AppKind) -> JobSpec {
        JobSpec {
            id: 0,
            app,
            arrival_us: 0,
            size: 1.0,
            slo_slowdown: None,
        }
    }

    #[test]
    fn first_fit_packs_and_solo_only_spreads() {
        let switches = [snap(&[AppKind::Fftw]), snap(&[])];
        assert_eq!(
            FirstFit.choose(&job(AppKind::Milc), &switches).unwrap(),
            Some(0)
        );
        assert_eq!(
            SoloOnly.choose(&job(AppKind::Milc), &switches).unwrap(),
            Some(1)
        );
        // A fully loaded cluster defers under both.
        let full = [snap(&[AppKind::Fftw, AppKind::Fftw])];
        assert_eq!(FirstFit.choose(&job(AppKind::Milc), &full).unwrap(), None);
        assert_eq!(SoloOnly.choose(&job(AppKind::Milc), &full).unwrap(), None);
    }

    #[test]
    fn random_is_reproducible_per_stream_and_stays_legal() {
        let switches = [snap(&[AppKind::Fftw, AppKind::Fftw]), snap(&[]), snap(&[])];
        let draw = |seed: u64| -> Vec<Option<usize>> {
            let mut p = Random::new(0);
            p.begin_stream(seed);
            (0..32)
                .map(|_| p.choose(&job(AppKind::Milc), &switches).unwrap())
                .collect()
        };
        assert_eq!(draw(7), draw(7), "same stream seed, same draws");
        assert_ne!(draw(7), draw(8), "different seed, different draws");
        for c in draw(7) {
            let c = c.expect("free slots exist");
            assert!(c == 1 || c == 2, "never the full switch");
        }
    }

    #[test]
    fn oracle_picks_the_cheapest_measured_pairing() {
        // Pairing with MILC costs 30 total, with MCB only 6; an empty
        // switch costs 0 and wins over both.
        let pairs = BTreeMap::from([
            ((AppKind::Fftw, AppKind::Milc), 20.0),
            ((AppKind::Milc, AppKind::Fftw), 10.0),
            ((AppKind::Fftw, AppKind::Mcb), 4.0),
            ((AppKind::Mcb, AppKind::Fftw), 2.0),
        ]);
        let mut oracle = Oracle::new(&pairs);
        let with_empty = [snap(&[AppKind::Milc]), snap(&[AppKind::Mcb]), snap(&[])];
        assert_eq!(
            oracle.choose(&job(AppKind::Fftw), &with_empty).unwrap(),
            Some(2)
        );
        let no_empty = [snap(&[AppKind::Milc]), snap(&[AppKind::Mcb])];
        assert_eq!(
            oracle.choose(&job(AppKind::Fftw), &no_empty).unwrap(),
            Some(1)
        );
        // An unmeasured pairing is a typed hole, not a silent zero.
        let sparse = BTreeMap::new();
        let mut blind = Oracle::new(&sparse);
        assert!(blind.choose(&job(AppKind::Fftw), &no_empty).is_err());
    }
}
