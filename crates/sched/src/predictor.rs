//! Decision-time prediction plumbing for the predictive policies.
//!
//! A production scheduler consulting the paper's models pays for a real
//! measurement: the candidate co-runner's impact profile. The
//! [`Predictor`] keeps that cost honest by routing every prediction
//! through a [`Backend`] — the analytic flow engine (wrapped in a
//! memoizing [`BatchEvaluator`]) in the inner loop, or the packet-level
//! DES for reference — so the decision-latency telemetry the study
//! reports is the latency a deployment would see, not a table lookup in
//! disguise.
//!
//! [`BatchEvaluator`]: anp_flowsim::BatchEvaluator

use anp_core::{Backend, ExperimentConfig, LookupTable, ModelKind, PredictionError, WorkloadSpec};
use anp_workloads::AppKind;

use crate::SchedError;

/// Predicts pairwise slowdowns at decision time by measuring the
/// co-runner's impact profile through a backend and reading the
/// prediction off the look-up table with one of the four models.
pub struct Predictor<'a> {
    backend: Box<dyn Backend>,
    cfg: &'a ExperimentConfig,
    table: &'a LookupTable,
}

impl std::fmt::Debug for Predictor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Predictor")
            .field("backend", &self.backend.name())
            .finish_non_exhaustive()
    }
}

impl<'a> Predictor<'a> {
    /// Builds a predictor over `backend`. Pass a memoizing wrapper (e.g.
    /// [`anp_flowsim::BatchEvaluator`]) when the same co-runners recur —
    /// which in a placement loop they always do.
    pub fn new(
        backend: Box<dyn Backend>,
        cfg: &'a ExperimentConfig,
        table: &'a LookupTable,
    ) -> Self {
        Predictor {
            backend,
            cfg,
            table,
        }
    }

    /// The measurement engine's short name (recorded in telemetry).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Predicted % slowdown of `victim` co-run with `other` under
    /// `model`. Measures `other`'s impact profile through the backend
    /// (an [`ExperimentError`] becomes a typed [`SchedError`]), then
    /// summarizes it against the look-up table.
    ///
    /// [`ExperimentError`]: anp_core::ExperimentError
    pub fn predicted(
        &self,
        victim: AppKind,
        other: AppKind,
        model: ModelKind,
    ) -> Result<f64, SchedError> {
        let profile = self
            .backend
            .measure_impact_profile(self.cfg, WorkloadSpec::App(other))?;
        model
            .model()
            .predict(self.table, victim, &profile)
            .ok_or(SchedError::Prediction(PredictionError::NoPrediction {
                victim,
                model,
            }))
    }
}
