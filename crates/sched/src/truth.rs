//! The DES-measured ground truth a scheduling study stands on.
//!
//! A [`GroundTruth`] bundles everything the study needs measured up
//! front: the look-up table and impact profiles (a [`Study`], the input
//! of the predictive policies) and the directed pair-slowdown grid (the
//! input of the oracle policy and of the realized-schedule validation).
//! Measurement runs under the supervision envelope — failed cells leave
//! typed holes instead of aborting — and with a journal every completed
//! cell survives a crash and resumes.
//!
//! [`Study`]: anp_core::Study

use std::collections::BTreeMap;

use anp_core::{
    all_models, calibrate_with, partial_exit_code, Backend, ExperimentConfig, LookupTable,
    MuPolicy, RunJournal, Study, Supervisor, SweepTelemetry, TaskError,
};
use anp_simnet::SimDuration;
use anp_workloads::{AppKind, CompressionConfig};

use crate::SchedError;

/// Everything measured before the first placement decision.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Look-up table + app impact profiles — what the predictive
    /// placement policies consult (through a model).
    pub study: Study,
    /// Directed measured pair slowdowns: `(victim, other)` → the %
    /// slowdown of `victim` co-run with `other` — what the oracle policy
    /// peeks at and what the realized-schedule validation replays.
    pub pairs: BTreeMap<(AppKind, AppKind), f64>,
}

impl GroundTruth {
    /// The solo runtime baseline of `app`, or a typed
    /// [`SchedError::MissingSolo`] hole when its baseline cell failed.
    pub fn solo(&self, app: AppKind) -> Result<SimDuration, SchedError> {
        self.study
            .table
            .solo
            .get(&app)
            .copied()
            .ok_or(SchedError::MissingSolo { app })
    }

    /// The measured % slowdown of `victim` co-run with `other`, or a
    /// typed unmeasured-pairing hole when its co-run cell failed.
    pub fn pair_slowdown(&self, victim: AppKind, other: AppKind) -> Result<f64, SchedError> {
        self.pairs
            .get(&(victim, other))
            .copied()
            .ok_or(SchedError::Prediction(
                anp_core::PredictionError::Unmeasured { victim, other },
            ))
    }
}

/// The outcome of a supervised ground-truth measurement campaign:
/// possibly-partial truth, the typed failures behind every hole, cell
/// accounting for the partial-completion exit convention, and the
/// per-sweep telemetry records.
#[derive(Debug)]
pub struct TruthCampaign {
    /// The assembled ground truth. `None` when the look-up table itself
    /// came back empty (no configuration completed its impact profile) —
    /// nothing downstream can run without it. Partial otherwise: failed
    /// profile cells leave apps unprofiled, failed co-run cells leave
    /// pairings out of [`GroundTruth::pairs`].
    pub truth: Option<GroundTruth>,
    /// Why each missing cell is missing, campaign order.
    pub failures: Vec<TaskError>,
    /// Cells that produced a value (journaled successes included).
    pub completed: usize,
    /// Total cells in the campaign.
    pub total: usize,
    /// Telemetry of each sweep (look-up table, profiles, pairing grid).
    pub telemetry: Vec<SweepTelemetry>,
}

impl TruthCampaign {
    /// `true` when every cell completed and the truth is whole.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.truth.is_some()
    }

    /// The campaign exit code: 0 complete, 3 partial, 1 when nothing
    /// completed.
    pub fn exit_code(&self) -> i32 {
        partial_exit_code(self.completed, self.total)
    }

    /// Writes the completion summary and per-failure detail through
    /// `sink` (one line per call).
    pub fn report(&self, mut sink: impl FnMut(&str)) {
        sink(&format!(
            "ground truth: {}/{} cells completed",
            self.completed, self.total
        ));
        for f in &self.failures {
            sink(&format!("  hole {}: {f}", f.label()));
        }
    }
}

/// Measures the full ground truth for a scheduling study under the
/// supervision envelope: idle calibration, the look-up table over
/// `ladder`, the per-app impact profiles, and the directed co-run
/// pairing grid for `apps`.
///
/// `backend` must be the reference engine the schedule is validated
/// against — the packet-level DES, possibly wrapped (the `anp` binary
/// passes a chaos-hook wrapper so fault-injection tests can target
/// individual cells). The idle calibration runs *unsupervised* (there is
/// no partial truth without it); everything after runs supervised, so a
/// failed cell becomes a typed hole and its siblings still land. With a
/// journal, completed cells resume across crashes.
pub fn measure_truth_supervised(
    backend: &dyn Backend,
    cfg: &ExperimentConfig,
    apps: &[AppKind],
    ladder: &[CompressionConfig],
    supervisor: &Supervisor,
    journal: Option<&RunJournal>,
    mut progress: impl FnMut(&str),
) -> Result<TruthCampaign, SchedError> {
    let calibration = calibrate_with(backend, cfg, MuPolicy::MinLatency)?;
    progress(&format!(
        "calibrated: mu {:.4}/us var {:.4}us^2",
        calibration.mu, calibration.var_s
    ));

    let mut failures = Vec::new();
    let mut telemetry = Vec::new();

    let (sup, lut_tel) = LookupTable::measure_supervised_with(
        backend,
        cfg,
        calibration,
        apps,
        ladder,
        supervisor,
        journal,
        &mut progress,
    )?;
    telemetry.push(lut_tel);
    let mut completed = sup.completed;
    let mut total = sup.total;
    failures.extend(sup.failures);

    let Some(table) = sup.table else {
        return Ok(TruthCampaign {
            truth: None,
            failures,
            completed,
            total,
            telemetry,
        });
    };

    let (study, profile_failures, profile_tel) = Study::measure_profiles_supervised_with(
        backend,
        cfg,
        table,
        apps,
        supervisor,
        journal,
        &mut progress,
    )?;
    telemetry.push(profile_tel);
    total += apps.len();
    completed += apps.len() - profile_failures.len();
    failures.extend(profile_failures);

    let mut outcomes = study.predict_all(apps, &all_models());
    let (pair_failures, pair_tel) = study.measure_pairs_supervised_with(
        backend,
        cfg,
        &mut outcomes,
        supervisor,
        journal,
        &mut progress,
    )?;
    telemetry.push(pair_tel);
    total += outcomes.len();
    completed += outcomes.iter().filter(|o| o.measured.is_some()).count();
    failures.extend(pair_failures);

    let pairs = outcomes
        .iter()
        .filter_map(|o| o.measured.map(|m| ((o.victim, o.other), m)))
        .collect();

    Ok(TruthCampaign {
        truth: Some(GroundTruth { study, pairs }),
        failures,
        completed,
        total,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_core::{Calibration, CompressionEntry, LatencyProfile};

    fn profile(mean_us: f64) -> LatencyProfile {
        let samples: Vec<f64> = (0..32).map(|i| mean_us + (i % 3) as f64 * 0.01).collect();
        LatencyProfile::from_samples(&samples)
    }

    fn truth() -> GroundTruth {
        let idle = profile(1.4);
        let calibration = Calibration::from_idle_profile(&idle, MuPolicy::MinLatency).unwrap();
        let loaded = profile(2.0);
        let utilization = calibration.utilization(&loaded);
        let entry = CompressionEntry {
            config: CompressionConfig::new(1, 25_000_000, 1),
            profile: loaded,
            utilization,
            slowdown: BTreeMap::from([(AppKind::Fftw, 10.0)]),
        };
        let solo = BTreeMap::from([(AppKind::Fftw, SimDuration::from_micros(1_000_000))]);
        let table = LookupTable::from_parts(calibration, vec![entry], solo);
        let study = Study::from_parts(table, BTreeMap::new());
        let pairs = BTreeMap::from([((AppKind::Fftw, AppKind::Milc), 12.5)]);
        GroundTruth { study, pairs }
    }

    #[test]
    fn holes_surface_as_typed_errors() {
        let t = truth();
        assert!(t.solo(AppKind::Fftw).is_ok());
        assert!(matches!(
            t.solo(AppKind::Amg),
            Err(SchedError::MissingSolo { app: AppKind::Amg })
        ));
        assert_eq!(t.pair_slowdown(AppKind::Fftw, AppKind::Milc).unwrap(), 12.5);
        assert!(matches!(
            t.pair_slowdown(AppKind::Milc, AppKind::Fftw),
            Err(SchedError::Prediction(_))
        ));
    }

    #[test]
    fn campaign_exit_codes_follow_the_partial_convention() {
        let whole = TruthCampaign {
            truth: Some(truth()),
            failures: Vec::new(),
            completed: 5,
            total: 5,
            telemetry: Vec::new(),
        };
        assert!(whole.is_complete());
        assert_eq!(whole.exit_code(), 0);

        let partial = TruthCampaign {
            truth: Some(truth()),
            failures: Vec::new(),
            completed: 3,
            total: 5,
            telemetry: Vec::new(),
        };
        assert_eq!(partial.exit_code(), 3);

        let empty = TruthCampaign {
            truth: None,
            failures: Vec::new(),
            completed: 0,
            total: 5,
            telemetry: Vec::new(),
        };
        assert!(!empty.is_complete());
        assert_eq!(empty.exit_code(), 1);

        let mut lines = Vec::new();
        partial.report(|l| lines.push(l.to_owned()));
        assert_eq!(lines, vec!["ground truth: 3/5 cells completed"]);
    }
}
