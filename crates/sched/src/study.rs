//! The scheduling study driver: policies × seeded streams → regret.
//!
//! A [`StudyOpts`] fixes the fabric, the application mix, the
//! interference ladder behind the look-up table, and the stream shape
//! (seed set, jobs per stream, offered load). [`run_suite`] then runs
//! every [`PolicySpec`] over every stream on the *same* measured ground
//! truth and aggregates realized stretch, makespan, SLO violations, and
//! decision latency per policy — the raw material of the regret table
//! (regret itself is accounted in [`crate::report`], anchored at the
//! oracle).

use std::collections::BTreeMap;
use std::time::Duration;

use anp_core::{Backend, DesBackend, ExperimentConfig, ModelKind, Parallelism};
use anp_flowsim::{BatchEvaluator, FlowBackend};
use anp_simnet::{SimDuration, SwitchConfig};
use anp_workloads::arrivals::{JobSpec, StreamConfig};
use anp_workloads::{AppKind, CompressionConfig, ImpactConfig};

use crate::cluster::{simulate, ScheduleOutcome, SLOTS_PER_SWITCH};
use crate::policy::{FirstFit, Oracle, PlacementPolicy, Predictive, Probed, Random, SoloOnly};
use crate::predictor::Predictor;
use crate::truth::GroundTruth;
use crate::SchedError;

/// Which measurement engine a predictive policy consults at decision
/// time. Both are wrapped in a memoizing [`BatchEvaluator`], so the
/// latency comparison measures the engines, not redundant re-simulation
/// of identical questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionEngine {
    /// The analytic flow-level model — the deployable inner-loop choice.
    Flow,
    /// The packet-level DES — reference fidelity, reference cost.
    Des,
}

impl DecisionEngine {
    /// Short name (matches the underlying backend's telemetry name).
    pub fn name(self) -> &'static str {
        match self {
            DecisionEngine::Flow => "flow",
            DecisionEngine::Des => "des",
        }
    }

    /// Builds the memoized decision backend.
    pub fn backend(self) -> Box<dyn Backend> {
        match self {
            DecisionEngine::Flow => Box::new(BatchEvaluator::new(Box::new(FlowBackend))),
            DecisionEngine::Des => Box::new(BatchEvaluator::new(Box::new(DesBackend))),
        }
    }
}

/// One policy under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// Greedy packing baseline.
    FirstFit,
    /// Seeded random placement baseline.
    Random,
    /// Never-share baseline.
    SoloOnly,
    /// Exhaustive search over the measured pair grid (regret zero point).
    Oracle,
    /// Model-driven placement with decision-time measurement through the
    /// given engine.
    Predictive(ModelKind, DecisionEngine),
    /// Model-driven placement fed by the *online monitor*: co-runner
    /// footprints probed live by the jittered train
    /// ([`anp_monitor::probed_profile_of_app`]) instead of a dedicated
    /// offline campaign.
    Probed(ModelKind),
}

impl PolicySpec {
    /// Stable display label (identical to the built policy's name).
    pub fn label(self) -> String {
        match self {
            PolicySpec::FirstFit => "first-fit".to_owned(),
            PolicySpec::Random => "random".to_owned(),
            PolicySpec::SoloOnly => "solo-only".to_owned(),
            PolicySpec::Oracle => "oracle".to_owned(),
            PolicySpec::Predictive(m, e) => {
                format!("predictive:{}:{}", m.name(), e.name())
            }
            PolicySpec::Probed(m) => format!("probed:{}", m.name()),
        }
    }
}

/// Everything a scheduling study needs fixed up front.
#[derive(Debug, Clone)]
pub struct StudyOpts {
    /// The fabric and measurement parameters for the ground truth (and
    /// for decision-time measurements).
    pub cfg: ExperimentConfig,
    /// The application mix jobs are drawn from.
    pub apps: Vec<AppKind>,
    /// CompressionB rungs behind the look-up table.
    pub ladder: Vec<CompressionConfig>,
    /// Arrival-stream seeds; every policy sees every stream.
    pub stream_seeds: Vec<u64>,
    /// Switches in the simulated pool.
    pub switches: usize,
    /// Jobs per stream.
    pub jobs_per_stream: u32,
    /// Offered load relative to cluster capacity (1.0 ≈ arrivals match
    /// aggregate solo service rate).
    pub load: f64,
}

/// The four-rung utilization ladder used by the CLI's `sweep`/`predict`
/// paths: one rung per utilization regime, light to near-saturation.
/// (Canonically defined on [`CompressionConfig::gated_ladder`]; kept here
/// as the name the scheduling code has always used.)
pub fn gated_ladder() -> Vec<CompressionConfig> {
    CompressionConfig::gated_ladder()
}

impl StudyOpts {
    /// CI-sized study: the small deterministic fabric (probe layout
    /// widened to 18 nodes so every proxy builds), four apps, three
    /// seeds. Finishes in seconds.
    pub fn quick(seed: u64, jobs: usize) -> Self {
        let mut switch = SwitchConfig::tiny_deterministic();
        switch.nodes = 18;
        switch.route_servers = 18;
        let cfg = ExperimentConfig {
            switch,
            impact: ImpactConfig {
                period: SimDuration::from_micros(100),
                pairs_per_node: 1,
                ..ImpactConfig::default()
            },
            measure_window: SimDuration::from_millis(5),
            warmup_frac: 0.1,
            run_cap: SimDuration::from_secs(60),
            seed,
            jobs: Parallelism::fixed(jobs),
            audit: false,
        }
        .with_seed(seed);
        StudyOpts {
            cfg,
            apps: vec![AppKind::Fftw, AppKind::Lulesh, AppKind::Mcb, AppKind::Milc],
            ladder: gated_ladder(),
            stream_seeds: vec![seed + 1, seed + 2, seed + 3],
            switches: 3,
            jobs_per_stream: 16,
            load: 0.95,
        }
    }

    /// Paper-sized study: the Cab fabric, all six applications, four
    /// switches.
    pub fn full(seed: u64, jobs: usize) -> Self {
        let cfg = ExperimentConfig::cab().with_seed(seed).with_jobs(jobs);
        StudyOpts {
            cfg,
            apps: AppKind::ALL.to_vec(),
            ladder: gated_ladder(),
            stream_seeds: vec![seed + 1, seed + 2, seed + 3],
            switches: 4,
            jobs_per_stream: 24,
            load: 0.95,
        }
    }
}

/// The default policy suite: three baselines, the four prediction models
/// on the flow engine, and the oracle.
pub fn default_specs() -> Vec<PolicySpec> {
    let mut specs = vec![
        PolicySpec::FirstFit,
        PolicySpec::Random,
        PolicySpec::SoloOnly,
    ];
    for kind in ModelKind::ALL {
        specs.push(PolicySpec::Predictive(kind, DecisionEngine::Flow));
    }
    specs.push(PolicySpec::Oracle);
    specs
}

/// Generates the seeded arrival stream for one seed: the study's app
/// mix, sizes in [0.5, 2), a quarter of jobs carrying a 50 % slowdown
/// SLO, and a mean interarrival derived from the mean solo runtime so
/// the offered load lands at [`StudyOpts::load`] of cluster capacity.
pub fn stream_for(
    opts: &StudyOpts,
    solos: &BTreeMap<AppKind, SimDuration>,
    stream_seed: u64,
) -> Result<Vec<JobSpec>, SchedError> {
    let mut total_us = 0.0;
    for &app in &opts.apps {
        total_us += solos
            .get(&app)
            .ok_or(SchedError::MissingSolo { app })?
            .as_micros_f64();
    }
    let mean_solo_us = total_us / opts.apps.len() as f64;
    // Mean job size is 1.25 (uniform in [0.5, 2)); capacity is
    // switches × slots jobs in service at once.
    let capacity = (opts.switches * SLOTS_PER_SWITCH) as f64;
    let mean_interarrival_us = mean_solo_us * 1.25 / (capacity * opts.load);
    let mut stream = StreamConfig::uniform(stream_seed, opts.jobs_per_stream, mean_interarrival_us);
    stream.apps = opts.apps.clone();
    Ok(stream.generate())
}

/// One policy's aggregate over the whole seed set.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The spec this outcome belongs to.
    pub spec: PolicySpec,
    /// Display label (stable across runs).
    pub label: String,
    /// Mean realized stretch across streams (%).
    pub mean_stretch_pct: f64,
    /// Mean makespan across streams (µs).
    pub mean_makespan_us: f64,
    /// Total SLO violations across streams.
    pub slo_violations: usize,
    /// Total jobs scheduled.
    pub jobs: usize,
    /// Total jobs that waited in a queue.
    pub queued: usize,
    /// Placement decisions that measured at decision time (predictive
    /// policies only; baselines report 0).
    pub decisions: u64,
    /// Wall clock spent inside `choose` (predictive policies only).
    pub decision_wall: Duration,
    /// Per-seed realized schedules, seed order.
    pub per_seed: Vec<(u64, ScheduleOutcome)>,
}

/// Runs every policy in `specs` over every stream seed in `opts` on the
/// same ground truth. Streams and placement run serially, so the
/// resulting tables are byte-identical regardless of `--jobs`; only the
/// decision *wall clock* varies, and that is reported separately.
pub fn run_suite(
    opts: &StudyOpts,
    truth: &GroundTruth,
    specs: &[PolicySpec],
    mut progress: impl FnMut(&str),
) -> Result<Vec<PolicyOutcome>, SchedError> {
    let solos = &truth.study.table.solo;
    let mut out = Vec::with_capacity(specs.len());
    for &spec in specs {
        // One policy instance per spec, reused across seeds so memoized
        // decision backends amortize exactly as a deployment would.
        let mut policy: Box<dyn PlacementPolicy + '_> = match spec {
            PolicySpec::FirstFit => Box::new(FirstFit),
            PolicySpec::Random => Box::new(Random::new(0)),
            PolicySpec::SoloOnly => Box::new(SoloOnly),
            PolicySpec::Oracle => Box::new(Oracle::new(&truth.pairs)),
            PolicySpec::Predictive(kind, engine) => Box::new(Predictive::new(
                kind,
                Predictor::new(engine.backend(), &opts.cfg, &truth.study.table),
            )),
            PolicySpec::Probed(kind) => Box::new(Probed::new(kind, &opts.cfg, &truth.study.table)),
        };
        let label = spec.label();
        let mut per_seed = Vec::with_capacity(opts.stream_seeds.len());
        for &seed in &opts.stream_seeds {
            let stream = stream_for(opts, solos, seed)?;
            policy.begin_stream(seed);
            let sched = simulate(solos, &truth.pairs, &stream, opts.switches, policy.as_mut())?;
            progress(&format!(
                "{label} seed {seed}: stretch {:+.1}% makespan {:.0}us slo-violations {} queued {}",
                sched.mean_stretch_pct, sched.makespan_us, sched.slo_violations, sched.queued
            ));
            per_seed.push((seed, sched));
        }
        let stats = policy.decision_stats();
        let n = per_seed.len() as f64;
        let mean_stretch_pct = per_seed
            .iter()
            .map(|(_, s)| s.mean_stretch_pct)
            .sum::<f64>()
            / n;
        let mean_makespan_us = per_seed.iter().map(|(_, s)| s.makespan_us).sum::<f64>() / n;
        out.push(PolicyOutcome {
            spec,
            label,
            mean_stretch_pct,
            mean_makespan_us,
            slo_violations: per_seed.iter().map(|(_, s)| s.slo_violations).sum(),
            jobs: per_seed.iter().map(|(_, s)| s.rows.len()).sum(),
            queued: per_seed.iter().map(|(_, s)| s.queued).sum(),
            decisions: stats.decisions,
            decision_wall: stats.wall,
            per_seed,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_have_stable_labels_and_default_suite_shape() {
        let specs = default_specs();
        assert_eq!(specs.len(), 8, "3 baselines + 4 models + oracle");
        assert_eq!(specs[0].label(), "first-fit");
        assert_eq!(
            PolicySpec::Predictive(ModelKind::Queue, DecisionEngine::Flow).label(),
            "predictive:Queue:flow"
        );
        assert_eq!(PolicySpec::Probed(ModelKind::Queue).label(), "probed:Queue");
        assert_eq!(specs.last().unwrap().label(), "oracle");
    }

    #[test]
    fn stream_load_derivation_matches_the_solo_mix() {
        let opts = StudyOpts::quick(7, 1);
        let solos: BTreeMap<AppKind, SimDuration> = opts
            .apps
            .iter()
            .map(|&a| (a, SimDuration::from_micros(10_000)))
            .collect();
        let stream = stream_for(&opts, &solos, 42).unwrap();
        assert_eq!(stream.len(), opts.jobs_per_stream as usize);
        // Expected interarrival: 10_000 × 1.25 / (3 × 2 × 0.95) ≈ 2193 µs.
        let span = stream.last().unwrap().arrival_us - stream[0].arrival_us;
        let mean_gap = span as f64 / (stream.len() - 1) as f64;
        assert!(
            (1_000.0..4_500.0).contains(&mean_gap),
            "mean interarrival {mean_gap} should sit near 2193us"
        );
        // Unknown app in the mix is a typed hole.
        let empty = BTreeMap::new();
        assert!(matches!(
            stream_for(&opts, &empty, 42),
            Err(SchedError::MissingSolo { .. })
        ));
    }
}
