//! Deterministic reporting and `anp-bench-v5` telemetry records.
//!
//! Two audiences, two surfaces. Humans get fixed-width tables —
//! [`render_summary`] for the per-policy regret table, [`render_schedule`]
//! for one stream's per-job placement — that contain **no wall-clock
//! numbers**, so stdout is byte-identical across `--jobs` settings and
//! machines (the CLI determinism test pins this). Machines get
//! [`SchedRecord`]s, which *do* carry decision latency, embedded in the
//! bench harness's `anp-bench-v5` JSON.

use anp_core::ModelKind;

use crate::cluster::ScheduleOutcome;
use crate::study::{PolicyOutcome, PolicySpec};

/// One policy's row in the `anp-bench-v5` `sched` array.
#[derive(Debug, Clone)]
pub struct SchedRecord {
    /// Policy label (`"oracle"`, `"predictive:Queue:flow"`, …).
    pub policy: String,
    /// The prediction model, for predictive policies.
    pub model: Option<ModelKind>,
    /// The decision-time measurement engine, for predictive policies.
    pub backend: Option<String>,
    /// Mean realized stretch across streams (%).
    pub mean_slowdown_pct: f64,
    /// Mean makespan across streams (µs).
    pub makespan_us: f64,
    /// Mean realized stretch above the oracle's (percentage points).
    pub regret_pct: f64,
    /// Total SLO violations across streams.
    pub slo_violations: usize,
    /// Placement decisions that measured at decision time.
    pub decisions: u64,
    /// Wall clock spent deciding (seconds) — telemetry only, never
    /// printed to stdout.
    pub decision_wall_secs: f64,
}

impl SchedRecord {
    /// Serializes the record as a JSON object.
    pub fn to_json(&self) -> String {
        let model = match self.model {
            Some(m) => format!("\"{}\"", m.name()),
            None => "null".to_owned(),
        };
        let backend = match &self.backend {
            Some(b) => format!("\"{b}\""),
            None => "null".to_owned(),
        };
        format!(
            "{{\"policy\":\"{}\",\"model\":{},\"backend\":{},\
             \"mean_slowdown_pct\":{},\"makespan_us\":{},\"regret_pct\":{},\
             \"slo_violations\":{},\"decisions\":{},\"decision_wall_secs\":{}}}",
            self.policy,
            model,
            backend,
            self.mean_slowdown_pct,
            self.makespan_us,
            self.regret_pct,
            self.slo_violations,
            self.decisions,
            self.decision_wall_secs,
        )
    }
}

/// The oracle's mean realized stretch — the zero point of regret.
/// `None` when the suite ran without an oracle.
pub fn oracle_mean(outcomes: &[PolicyOutcome]) -> Option<f64> {
    outcomes
        .iter()
        .find(|o| o.spec == PolicySpec::Oracle)
        .map(|o| o.mean_stretch_pct)
}

/// Builds the telemetry records for a suite, anchoring regret at the
/// oracle (or at the suite's best policy when no oracle ran).
pub fn records(outcomes: &[PolicyOutcome]) -> Vec<SchedRecord> {
    let zero = oracle_mean(outcomes).unwrap_or_else(|| {
        outcomes
            .iter()
            .map(|o| o.mean_stretch_pct)
            .fold(f64::INFINITY, f64::min)
    });
    outcomes
        .iter()
        .map(|o| {
            let (model, backend) = match o.spec {
                PolicySpec::Predictive(m, e) => (Some(m), Some(e.name().to_owned())),
                PolicySpec::Probed(m) => (Some(m), Some("monitor".to_owned())),
                _ => (None, None),
            };
            SchedRecord {
                policy: o.label.clone(),
                model,
                backend,
                mean_slowdown_pct: o.mean_stretch_pct,
                makespan_us: o.mean_makespan_us,
                regret_pct: o.mean_stretch_pct - zero,
                slo_violations: o.slo_violations,
                decisions: o.decisions,
                decision_wall_secs: o.decision_wall.as_secs_f64(),
            }
        })
        .collect()
}

/// Renders the per-policy regret table. Deliberately free of wall-clock
/// columns: stdout must be byte-identical across worker counts.
pub fn render_summary(outcomes: &[PolicyOutcome]) -> String {
    let zero = oracle_mean(outcomes).unwrap_or_else(|| {
        outcomes
            .iter()
            .map(|o| o.mean_stretch_pct)
            .fold(f64::INFINITY, f64::min)
    });
    let mut s = format!(
        "{:<28} {:>9} {:>9} {:>13} {:>8} {:>7}\n",
        "policy", "stretch%", "regret%", "makespan(ms)", "slo-viol", "queued"
    );
    for o in outcomes {
        s.push_str(&format!(
            "{:<28} {:>9.2} {:>9.2} {:>13.2} {:>8} {:>7}\n",
            o.label,
            o.mean_stretch_pct,
            o.mean_stretch_pct - zero,
            o.mean_makespan_us / 1_000.0,
            o.slo_violations,
            o.queued
        ));
    }
    s
}

/// Renders one stream's realized schedule, job by job.
pub fn render_schedule(sched: &ScheduleOutcome) -> String {
    let mut s = format!(
        "{:<4} {:<8} {:>6} {:>12} {:>12} {:>12} {:>6} {:>9} {:>4}\n",
        "job", "app", "size", "arrive(us)", "place(us)", "finish(us)", "switch", "stretch%", "slo"
    );
    for r in &sched.rows {
        s.push_str(&format!(
            "{:<4} {:<8} {:>6.2} {:>12.0} {:>12.0} {:>12.0} {:>6} {:>9.2} {:>4}\n",
            r.id,
            r.app.name(),
            r.size,
            r.arrival_us,
            r.placed_us,
            r.finish_us,
            r.switch,
            r.stretch_pct,
            if r.slo_violated { "VIOL" } else { "-" }
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::DecisionEngine;
    use std::time::Duration;

    fn outcome(spec: PolicySpec, stretch: f64) -> PolicyOutcome {
        PolicyOutcome {
            spec,
            label: spec.label(),
            mean_stretch_pct: stretch,
            mean_makespan_us: 50_000.0,
            slo_violations: 1,
            jobs: 48,
            queued: 3,
            decisions: 10,
            decision_wall: Duration::from_millis(12),
            per_seed: Vec::new(),
        }
    }

    #[test]
    fn regret_is_anchored_at_the_oracle() {
        let suite = [
            outcome(PolicySpec::FirstFit, 30.0),
            outcome(
                PolicySpec::Predictive(ModelKind::Queue, DecisionEngine::Flow),
                12.0,
            ),
            outcome(PolicySpec::Oracle, 10.0),
        ];
        assert_eq!(oracle_mean(&suite), Some(10.0));
        let recs = records(&suite);
        assert_eq!(recs[0].regret_pct, 20.0);
        assert_eq!(recs[1].regret_pct, 2.0);
        assert_eq!(recs[2].regret_pct, 0.0);
        assert_eq!(recs[1].model, Some(ModelKind::Queue));
        assert_eq!(recs[1].backend.as_deref(), Some("flow"));
        assert_eq!(recs[0].model, None);
        let json = recs[1].to_json();
        assert!(json.contains("\"policy\":\"predictive:Queue:flow\""));
        assert!(json.contains("\"regret_pct\":2"));
        assert!(json.contains("\"decision_wall_secs\":0.012"));
    }

    #[test]
    fn summary_has_no_wall_clock_columns() {
        let suite = [outcome(PolicySpec::Oracle, 10.0)];
        let table = render_summary(&suite);
        assert!(table.contains("regret%"));
        assert!(!table.to_lowercase().contains("wall"));
        assert!(!table.to_lowercase().contains("secs"));
    }

    #[test]
    fn missing_oracle_anchors_regret_at_the_best_policy() {
        let suite = [
            outcome(PolicySpec::FirstFit, 30.0),
            outcome(PolicySpec::SoloOnly, 14.0),
        ];
        assert_eq!(oracle_mean(&suite), None);
        let recs = records(&suite);
        assert_eq!(recs[1].regret_pct, 0.0);
        assert_eq!(recs[0].regret_pct, 16.0);
    }
}
