//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro (with an
//! optional `#![proptest_config(...)]` attribute), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, primitive range strategies, tuple
//! strategies, and [`collection::vec`].
//!
//! Semantics differ from upstream in one deliberate way: generation is
//! fully deterministic (a fixed per-case seed derived from the case
//! index), and failing cases are reported with their generated inputs but
//! **not shrunk**. For a CI gate that is the right trade — reproducible
//! runs, no flakes — at the cost of less-minimal counterexamples.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner plumbing used by the macros.
pub mod test_runner {
    /// Per-proptest-block configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream's default.
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: generate a fresh case, don't count it.
        Reject(String),
        /// `prop_assert*!` failed: the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }
}

/// A source of generated values. Unlike upstream this is a plain sampler:
/// no shrink tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u32, u64, usize);

impl Strategy for Range<u8> {
    type Value = u8;
    fn generate(&self, rng: &mut StdRng) -> u8 {
        rng.gen_range(u32::from(self.start)..u32::from(self.end)) as u8
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut StdRng) -> i64 {
        let span = self.end.wrapping_sub(self.start) as u64;
        assert!(span > 0, "cannot sample empty range");
        self.start.wrapping_add(rng.gen_range(0..span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Collection strategies.
pub mod collection {
    use super::{Range, RangeInclusive, StdRng, Strategy};
    use rand::Rng;

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_inclusive: usize,
    }

    /// Acceptable length specifications for [`vec`].
    pub trait SizeRange {
        /// Lower bound and inclusive upper bound of the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// Generates vectors of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max_inclusive) = size.bounds();
        VecStrategy {
            element,
            min,
            max_inclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.min..=self.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derives the RNG for one generated case: deterministic in the case
/// index, decorrelated across cases.
pub fn case_rng(attempt: u64) -> StdRng {
    StdRng::seed_from_u64(0xA1B2_C3D4_E5F6_0718 ^ attempt.wrapping_mul(0x2545_F491_4F6C_DD1D))
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests. Supports the subset of upstream syntax used in
/// this workspace: an optional leading `#![proptest_config(expr)]`, then
/// one or more `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            let max_attempts = u64::from(config.cases).saturating_mul(64).max(1024);
            while accepted < config.cases {
                assert!(
                    attempt < max_attempts,
                    "proptest '{}': too many rejected cases ({} attempts)",
                    stringify!($name),
                    attempt
                );
                let mut __rng = $crate::case_rng(attempt);
                attempt += 1;
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                let __desc = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let mut __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                match __case() {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed: {}\n  inputs: {}",
                            stringify!($name),
                            msg,
                            __desc
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with its inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Discards the current case (without counting it) when the assumption
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated values respect their strategy's bounds.
        #[test]
        fn bounds_hold(x in 3u32..9, y in -5.0f64..5.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        /// Rejection resamples instead of failing.
        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }

        /// Vec strategies respect length bounds and element bounds.
        #[test]
        fn vec_strategy(xs in collection::vec((0u32..4, 1u64..100), 2..20)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 20);
            for (a, b) in &xs {
                prop_assert!(*a < 4);
                prop_assert!((1..100).contains(b));
            }
        }
    }

    #[test]
    fn determinism_across_runs() {
        let a: Vec<u64> = (0..8)
            .map(|i| rand::Rng::gen::<u64>(&mut crate::case_rng(i)))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|i| rand::Rng::gen::<u64>(&mut crate::case_rng(i)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
