//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the small slice of `rand`'s API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for
//! `f64`/`u64`/`u32`/`bool`, and [`Rng::gen_range`] over half-open and
//! inclusive primitive ranges.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but with the same contract
//! the simulator relies on: a fixed seed yields one fixed, portable,
//! high-quality sequence. Determinism of simulation results is preserved
//! because every consumer seeds explicitly via `seed_from_u64`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform u64 source. Object-safe core of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over their range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty,
    /// matching upstream behaviour.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` without modulo bias (widening-multiply
/// rejection, Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let lo = m as u64;
        if lo >= span || lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[allow(clippy::unnecessary_cast)]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[allow(clippy::unnecessary_cast)]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u64, u32, usize);

/// Explicit-seed construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 stream, but equally deterministic and
    /// statistically strong for simulation purposes.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as rand_core recommends.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step (Blackman & Vigna, public domain).
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&x));
            let y = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&y));
            let z = rng.gen_range(3u32..7);
            assert!((3..7).contains(&z));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
