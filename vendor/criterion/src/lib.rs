//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crate registry, so the workspace vendors
//! the slice of criterion's API its benches use: [`Criterion`],
//! benchmark groups with [`Throughput`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical engine this harness runs a short
//! warm-up, then a fixed measurement batch, and prints mean wall-clock
//! time per iteration (plus derived throughput when set). Good enough to
//! keep the benches compiling, runnable, and honest about relative cost;
//! not a replacement for criterion's confidence intervals.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// How expensive batch setup output is to hold in memory; accepted for
/// API compatibility, the harness treats all variants alike.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The measurement driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with fresh un-timed `setup` output per iteration.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 30;

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut warm = Bencher {
        iters: WARMUP_ITERS,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let mut b = Bencher {
        iters: MEASURE_ITERS,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / MEASURE_ITERS as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {name:<40} {:>12.3} µs/iter{rate}", per_iter * 1e6);
}

/// A named set of related benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Sets the sample count. No-op; the stand-in always runs a fixed
    /// number of iterations, but real criterion callers expect the method.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.throughput, &mut f);
        self
    }

    /// Ends the group. No-op; kept for API compatibility.
    pub fn finish(self) {}
}

/// Top-level benchmark registry and driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), None, &mut f);
        self
    }
}

/// Bundles benchmark functions into a single runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("iter", |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 10],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}
