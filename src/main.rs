//! `anp` — command-line front end for the active-measurement toolkit.
//!
//! ```text
//! anp calibrate                 # idle-switch calibration
//! anp probe <APP>               # impact experiment: APP's switch footprint
//! anp sweep <APP>               # degradation ladder for APP (mini Fig. 7)
//! anp losses <APP>              # degradation vs packet-loss rate for APP
//! anp predict <APP> <APP>       # predict mutual slowdown of a pairing
//! anp apps                      # list the built-in application proxies
//! anp audit [--quick]           # invariant audit + differential oracle
//! anp sched [--quick] [--model KIND]  # predictive co-scheduling study
//! anp monitor [--quick]         # online monitor accuracy study
//! anp lint [--json] [--quick]   # determinism/robustness static analysis
//! ```
//!
//! Global flags: `--seed <n>`, `--jobs <n>`, `--backend <des|flow>`,
//! plus the supervision envelope for the sweeping commands:
//! `--max-retries <n>`, `--run-budget <secs>`, `--event-budget <n>`,
//! `--resume <journal>`. All commands run on the simulated Cab switch;
//! see the `anp-bench` binaries for the full paper harnesses.

use anp_core::{
    all_models, audit_compiled, calibrate_with, completed_count, config_fingerprint,
    degradation_percent, loss_sweep_supervised, partial_exit_code, run_oracle,
    sweep_supervised_for, Backend, BackendError, DesBackend, ExperimentConfig, ExperimentError,
    LatencyProfile, LookupTable, ModelKind, MuPolicy, Parallelism, RetryPolicy, RunBudget,
    RunJournal, Study, Supervisor, WorkloadSpec,
};
use anp_monitor::{
    gate_violations, render_report as render_monitor_report, run_monitor_study, MonitorOpts,
};
use anp_sched::{
    measure_truth_supervised, render_schedule, render_summary, run_suite, DecisionEngine,
    PolicySpec, StudyOpts,
};
use anp_simmpi::ReliabilityConfig;
use anp_simnet::SimDuration;
use anp_workloads::{AppKind, CompressionConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: anp [--seed N] [--jobs N] [--backend des|flow]\n\
         \x20          [--max-retries N] [--run-budget SECS] [--event-budget N]\n\
         \x20          [--resume JOURNAL] <command>\n\
         commands:\n\
         \x20 calibrate            idle-switch calibration report\n\
         \x20 apps                 list application proxies\n\
         \x20 probe <APP>          measure APP's switch utilization\n\
         \x20 sweep <APP>          degradation vs utilization ladder for APP\n\
         \x20 losses <APP>         degradation vs packet-loss rate for APP\n\
         \x20 predict <A> <B>      predict A and B's mutual slowdown\n\
         \x20 audit [--quick]      invariant audit + differential oracle:\n\
         \x20                      the same ladder through DES --jobs 1,\n\
         \x20                      --jobs 8, a kill-and-resume run, and the\n\
         \x20                      flow model; exits 1 on any divergence\n\
         \x20                      (--quick: small deterministic fabric)\n\
         \x20 sched [--quick] [--model KIND]\n\
         \x20                      predictive co-scheduling study: a seeded\n\
         \x20                      job stream placed by the KIND model (over\n\
         \x20                      the --backend engine) vs first-fit,\n\
         \x20                      random, solo-only, and the oracle, on\n\
         \x20                      DES-measured ground truth; KIND is one of\n\
         \x20                      AverageLT, AverageStDevLT, PDFLT, Queue\n\
         \x20                      (default Queue)\n\
         \x20 monitor [--quick]    online monitor accuracy study: a jittered\n\
         \x20                      probe train co-runs with workloads in the\n\
         \x20                      DES and its streaming estimate is gated\n\
         \x20                      against ground truth — utilization error\n\
         \x20                      per ladder rung, change-point detection\n\
         \x20                      latency per app, and probe overhead;\n\
         \x20                      exits 1 on any gate violation\n\
         \x20 lint [--json] [--quick] [--root DIR]\n\
         \x20                      static analysis of the workspace sources\n\
         \x20                      against the determinism contract (D001..\n\
         \x20                      D006: hash-map iteration, wall clocks in\n\
         \x20                      sim crates, unwrap/expect in library\n\
         \x20                      code, unchecked SimTime arithmetic,\n\
         \x20                      order-sensitive float accumulation,\n\
         \x20                      undocumented pub items); --json emits\n\
         \x20                      the anp-lint-v1 report, --quick skips\n\
         \x20                      tests/benches/examples; exits 1 on any\n\
         \x20                      unsuppressed violation\n\
         APP is one of: FFTW, Lulesh, MCB, MILC, VPFFT, AMG (case-insensitive)\n\
         --jobs N runs experiment sweeps on N worker threads (default: all\n\
         cores; results are identical for any setting, 1 = serial)\n\
         --backend selects the measurement engine: 'des' (packet-level\n\
         simulation, the default and reference) or 'flow' (analytic\n\
         flow-level model; see DESIGN.md for its error envelope)\n\
         --max-retries N retries failed or panicked sweep cells (budget\n\
         trips are never retried); --run-budget / --event-budget cap each\n\
         cell attempt; --resume JOURNAL makes 'sweep' and 'losses'\n\
         crash-safe: completed cells are journaled and re-invocation\n\
         re-runs only the missing ones. Sweeping commands exit 0 when\n\
         every cell completed, 3 on a partial result, 1 when nothing did."
    );
    std::process::exit(2);
}

/// Prints an error and exits with status 1 (experiment-level failures,
/// as opposed to `usage()` for malformed invocations).
fn fail<E: std::fmt::Display>(err: E) -> ! {
    eprintln!("error: {err}");
    std::process::exit(1);
}

/// Parses a flag's value, naming the flag and the offending text on
/// stderr before the usage text — `anp: invalid value for --seed: "foo"`
/// — instead of a bare usage dump that leaves the user hunting for the
/// typo.
fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("anp: missing value for {flag}");
        usage()
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("anp: invalid value for {flag}: \"{v}\"");
        usage()
    })
}

fn parse_app(arg: Option<String>) -> AppKind {
    let Some(name) = arg else { usage() };
    match AppKind::from_name(&name) {
        Some(app) => app,
        None => {
            eprintln!("unknown application '{name}'");
            usage()
        }
    }
}

/// Chaos hook for the supervision integration tests: `ANP_FAULT_PANIC`
/// and `ANP_FAULT_SPIN` name sweep-cell labels (comma-separated). A
/// matching cell panics, or burns its whole event budget up front so the
/// deterministic watchdog trips on its first simulation. Both are inert
/// unless the variables are set, and both go through the same supervised
/// code paths a real fault would.
fn fault_hook(label: &str) {
    let listed = |var: &str| {
        std::env::var(var)
            .map(|v| v.split(',').any(|l| l == label))
            .unwrap_or(false)
    };
    if listed("ANP_FAULT_PANIC") {
        panic!("injected fault: panic in {label}");
    }
    if listed("ANP_FAULT_SPIN") {
        anp_core::supervise::charge_events(u64::MAX / 2);
    }
}

/// Wraps a backend so every measurement first passes its sweep-cell
/// label through [`fault_hook`], using the same label spellings the
/// supervised sweeps journal (`profile:APP`, `impact:COMP`, `solo:APP`,
/// `corun:A+B`, `grid:APP:COMP`). This lets the fault-injection tests
/// target individual ground-truth cells of `anp sched` exactly as they
/// target `anp sweep` rungs.
struct HookedBackend<B>(B);

impl<B: Backend> Backend for HookedBackend<B> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn supports_faults(&self) -> bool {
        self.0.supports_faults()
    }

    fn supports_timed_series(&self) -> bool {
        self.0.supports_timed_series()
    }

    fn measure_impact_profile(
        &self,
        cfg: &ExperimentConfig,
        workload: WorkloadSpec<'_>,
    ) -> Result<LatencyProfile, ExperimentError> {
        let label = match workload {
            WorkloadSpec::Idle => "impact:idle".to_owned(),
            WorkloadSpec::App(app) => format!("profile:{}", app.name()),
            WorkloadSpec::Compression(comp) => format!("impact:{}", comp.label()),
        };
        fault_hook(&label);
        self.0.measure_impact_profile(cfg, workload)
    }

    fn measure_compression_run(
        &self,
        cfg: &ExperimentConfig,
        app: AppKind,
        comp: &CompressionConfig,
    ) -> Result<SimDuration, ExperimentError> {
        fault_hook(&format!("grid:{}:{}", app.name(), comp.label()));
        self.0.measure_compression_run(cfg, app, comp)
    }

    fn measure_solo_runtime(
        &self,
        cfg: &ExperimentConfig,
        app: AppKind,
    ) -> Result<SimDuration, ExperimentError> {
        fault_hook(&format!("solo:{}", app.name()));
        self.0.measure_solo_runtime(cfg, app)
    }

    fn measure_corun_runtime(
        &self,
        cfg: &ExperimentConfig,
        victim: AppKind,
        other: AppKind,
    ) -> Result<SimDuration, ExperimentError> {
        fault_hook(&format!("corun:{}+{}", victim.name(), other.name()));
        self.0.measure_corun_runtime(cfg, victim, other)
    }
}

/// Opens the `--resume` journal: resumed when the file exists, created
/// otherwise. A journal that cannot be opened is a hard error — running
/// without the requested crash net would be worse than stopping.
fn open_journal(path: Option<&std::path::Path>) -> Option<RunJournal> {
    let path = path?;
    let journal = if path.exists() {
        RunJournal::resume(path)
    } else {
        RunJournal::create(path)
    };
    match journal {
        Ok(j) => {
            if j.completed_cells() > 0 {
                eprintln!(
                    "(resuming: {} completed cells journaled in {})",
                    j.completed_cells(),
                    path.display()
                );
            }
            Some(j)
        }
        Err(e) => fail(e),
    }
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut seed = 0xA11CEu64;
    let mut jobs: Option<usize> = None;
    let mut backend_name = "des".to_owned();
    let mut max_retries = 0u32;
    let mut run_budget_secs: Option<f64> = None;
    let mut event_budget: Option<u64> = None;
    let mut resume: Option<std::path::PathBuf> = None;
    while let Some(a) = args.peek() {
        if a == "--seed" {
            args.next();
            seed = parse_flag("--seed", args.next());
        } else if a == "--jobs" {
            args.next();
            jobs = Some(parse_flag("--jobs", args.next()));
        } else if a == "--backend" {
            args.next();
            let Some(v) = args.next() else {
                eprintln!("anp: missing value for --backend");
                usage()
            };
            backend_name = v;
        } else if a == "--max-retries" {
            args.next();
            max_retries = parse_flag("--max-retries", args.next());
        } else if a == "--run-budget" {
            args.next();
            let raw = args.next();
            let secs: f64 = parse_flag("--run-budget", raw.clone());
            if secs.is_nan() || secs <= 0.0 {
                eprintln!(
                    "anp: invalid value for --run-budget: \"{}\"",
                    raw.unwrap_or_default()
                );
                usage();
            }
            run_budget_secs = Some(secs);
        } else if a == "--event-budget" {
            args.next();
            event_budget = Some(parse_flag("--event-budget", args.next()));
        } else if a == "--resume" {
            args.next();
            let Some(v) = args.next() else {
                eprintln!("anp: missing value for --resume");
                usage()
            };
            resume = Some(std::path::PathBuf::from(v));
        } else {
            break;
        }
    }
    // `lint` is a pure source-analysis pass: it needs no backend, no
    // switch config, and no supervision envelope, so it dispatches
    // before any of those are resolved.
    if args.peek().map(String::as_str) == Some("lint") {
        args.next();
        let mut json = false;
        let mut quick = false;
        let mut root: Option<std::path::PathBuf> = None;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => json = true,
                "--quick" => quick = true,
                "--root" => {
                    let Some(v) = args.next() else {
                        eprintln!("anp: missing value for --root");
                        usage()
                    };
                    root = Some(std::path::PathBuf::from(v));
                }
                _ => usage(),
            }
        }
        let root = root.unwrap_or_else(|| std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")));
        let opts = anp_lint::LintOptions {
            jobs: jobs.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
            quick,
        };
        let report = anp_lint::lint_workspace(&root, &opts).unwrap_or_else(|e| fail(e));
        if json {
            print!("{}", report.to_json());
        } else {
            print!("{}", report.render_human());
        }
        std::process::exit(if report.is_clean() { 0 } else { 1 });
    }
    let supervisor = Supervisor {
        budget: RunBudget {
            wall: run_budget_secs.map(Duration::from_secs_f64),
            events: event_budget,
        },
        retry: RetryPolicy {
            max_retries,
            backoff: if max_retries > 0 {
                Duration::from_millis(100)
            } else {
                Duration::ZERO
            },
        },
    };
    let mut cfg = ExperimentConfig::cab().with_seed(seed);
    if let Some(n) = jobs {
        cfg = cfg.with_jobs(n);
    }
    if let Err(e) = cfg.switch.validate() {
        fail(e);
    }
    // Resolve the measurement engine and reject configurations it cannot
    // honor up front: a typed error on stderr and exit 1, never a silent
    // fallback to another backend.
    let backend: Box<dyn Backend> =
        anp_flowsim::backend_from_name(&backend_name).unwrap_or_else(|e| fail(e));
    let backend = backend.as_ref();
    if let Err(e) = backend.validate(&cfg) {
        fail(e);
    }
    let Some(cmd) = args.next() else { usage() };

    match cmd.as_str() {
        "calibrate" => {
            let idle = backend
                .measure_impact_profile(&cfg, WorkloadSpec::Idle)
                .unwrap_or_else(|e| fail(e));
            let calib =
                calibrate_with(backend, &cfg, MuPolicy::MinLatency).unwrap_or_else(|e| fail(e));
            println!(
                "idle probe latency: mean {:.3}us, sd {:.3}us, min {:.3}us (n={})",
                idle.mean(),
                idle.std_dev(),
                idle.min(),
                idle.count()
            );
            println!(
                "queue model: mu = {:.4} packets/us, Var(S) = {:.4} us^2",
                calib.mu, calib.var_s
            );
            println!(
                "idle utilization reading: {:.1}%",
                calib.utilization(&idle) * 100.0
            );
        }
        "apps" => {
            for app in AppKind::ALL {
                let l = app.layout();
                println!(
                    "{:<7} {:>4} ranks on {:>2} nodes ({} per node)  {}",
                    app.name(),
                    l.ranks(),
                    l.nodes,
                    l.per_node,
                    app.skeleton()
                );
            }
        }
        "probe" => {
            let app = parse_app(args.next());
            let calib =
                calibrate_with(backend, &cfg, MuPolicy::MinLatency).unwrap_or_else(|e| fail(e));
            let p = backend
                .measure_impact_profile(&cfg, WorkloadSpec::App(app))
                .unwrap_or_else(|e| fail(e));
            println!(
                "{}: probe mean {:.2}us (sd {:.2}us, n={})",
                app.name(),
                p.mean(),
                p.std_dev(),
                p.count()
            );
            println!(
                "estimated switch utilization: {:.1}%",
                calib.utilization(&p) * 100.0
            );
        }
        "sweep" => {
            let app = parse_app(args.next());
            let calib =
                calibrate_with(backend, &cfg, MuPolicy::MinLatency).unwrap_or_else(|e| fail(e));
            let solo = backend
                .measure_solo_runtime(&cfg, app)
                .unwrap_or_else(|e| fail(e));
            println!("{} solo: {}", app.name(), solo);
            println!("{:<18} {:>7} {:>12}", "config", "util", "degradation");
            let ladder = [
                CompressionConfig::new(1, 25_000_000, 1),
                CompressionConfig::new(7, 2_500_000, 10),
                CompressionConfig::new(14, 250_000, 1),
                CompressionConfig::new(17, 25_000, 10),
            ];
            // Each rung (impact + runtime, one cell) runs inside the
            // supervision envelope: a panicking or over-budget rung
            // becomes a `-` row while its siblings complete, and with
            // `--resume` completed rungs are journaled for crash-safe
            // re-invocation. Collection is ladder-ordered, so the table
            // is byte-identical for any `--jobs` setting.
            let journal = open_journal(resume.as_deref());
            let fp = config_fingerprint(&cfg, backend.name());
            let tasks: Vec<(String, _)> = ladder
                .iter()
                .map(|comp| {
                    let cfg = &cfg;
                    let label = format!("rung:{}", comp.label());
                    (label.clone(), move || {
                        fault_hook(&label);
                        let p =
                            backend.measure_impact_profile(cfg, WorkloadSpec::Compression(comp))?;
                        let t = backend.measure_compression_run(cfg, app, comp)?;
                        Ok((p, t))
                    })
                })
                .collect();
            let (rungs, _telemetry) = sweep_supervised_for(
                "sweep-ladder",
                backend.name(),
                cfg.jobs,
                &supervisor,
                journal.as_ref(),
                fp,
                tasks,
            )
            .unwrap_or_else(|e| fail(e));
            for (comp, cell) in ladder.iter().zip(&rungs) {
                match cell {
                    Ok((p, t)) => println!(
                        "{:<18} {:>6.1}% {:>+11.1}%",
                        comp.label(),
                        calib.utilization(p) * 100.0,
                        degradation_percent(solo, *t)
                    ),
                    Err(e) => {
                        println!("{:<18} {:>7} {:>12}", comp.label(), "-", "-");
                        eprintln!("error: {e}");
                    }
                }
            }
            let completed = completed_count(&rungs);
            if completed < rungs.len() {
                eprintln!(
                    "error: {} rung(s) did not complete",
                    rungs.len() - completed
                );
                if let Some(p) = &resume {
                    eprintln!("(re-run with --resume {} to complete)", p.display());
                }
            }
            std::process::exit(partial_exit_code(completed, rungs.len()));
        }
        "losses" => {
            let app = parse_app(args.next());
            // The loss sweep installs a FaultPlan per loss point, so it
            // needs a fault-capable engine; reject others before any
            // simulation runs rather than falling back silently.
            if !backend.supports_faults() {
                fail(BackendError::UnsupportedOption {
                    backend: backend.name(),
                    option: "packet-loss fault injection (the losses sweep)".to_owned(),
                });
            }
            // Timeout well above congested delivery latency (spurious
            // retransmits snowball), loss rates low enough that a 24KB /
            // 24-packet message still survives most attempts: the ARQ is
            // message-grained, so loss x packets-per-message must stay
            // well below 1.
            let rel = ReliabilityConfig {
                retransmit_timeout: SimDuration::from_millis(50),
                max_retries: 10,
            };
            let solo = backend
                .measure_solo_runtime(&cfg, app)
                .unwrap_or_else(|e| fail(e));
            println!("{} lossless: {}", app.name(), solo);
            println!("{:<10} {:>12} {:>12}", "loss", "runtime", "degradation");
            // Each loss point runs under the supervision envelope; with
            // `--resume` completed points are journaled, so a crashed or
            // partial sweep re-runs only the missing rows.
            let journal = open_journal(resume.as_deref());
            let (points, _telemetry) = loss_sweep_supervised(
                &cfg,
                app,
                &[0.0, 1e-4, 5e-4, 1e-3],
                rel,
                &supervisor,
                journal.as_ref(),
            )
            .unwrap_or_else(|e| fail(e));
            let total = points.len();
            let mut completed = 0usize;
            for (loss, res) in &points {
                match res {
                    Ok(t) => {
                        completed += 1;
                        println!(
                            "{:<10} {:>12} {:>+11.1}%",
                            format!("{:.2}%", loss * 100.0),
                            format!("{t}"),
                            degradation_percent(solo, *t)
                        );
                    }
                    Err(e) => {
                        // The table row stays on stdout; the error detail
                        // goes to stderr, and the command exits nonzero
                        // (3: partial table, 1: nothing completed).
                        println!(
                            "{:<10} {:>12} (failed)",
                            format!("{:.2}%", loss * 100.0),
                            "-"
                        );
                        eprintln!("error: loss {:.2}%: {e}", loss * 100.0);
                    }
                }
            }
            if completed < total {
                eprintln!(
                    "error: {} loss point(s) did not complete",
                    total - completed
                );
                if let Some(p) = &resume {
                    eprintln!("(re-run with --resume {} to complete)", p.display());
                }
                std::process::exit(partial_exit_code(completed, total));
            }
        }
        "audit" => {
            let quick = match args.next() {
                None => false,
                Some(a) if a == "--quick" => true,
                Some(_) => usage(),
            };
            if !audit_compiled() {
                eprintln!(
                    "warning: invariant auditing is compiled out — rebuild with \
                     `--features audit` to check conservation laws; running the \
                     differential oracle without them"
                );
            }
            // The ladder runs on the Cab-like preset: the flow model's
            // 10%/15% envelope is documented and gate-tested there
            // (`backend_xval`), so that is where the oracle may hold it
            // to the envelope. Quick mode trims the app axis to FFTW;
            // the full run adds the compute-bound extreme.
            //
            // The oracle always measures against the DES reference; the
            // flow engine is the fourth, envelope-checked mode and is
            // skipped (with a warning) if it cannot honor the config.
            let flow: Option<Box<dyn Backend>> = match anp_flowsim::backend_from_name("flow") {
                Ok(b) => match b.validate(&cfg) {
                    Ok(()) => Some(b),
                    Err(e) => {
                        eprintln!("warning: flow mode skipped: {e}");
                        None
                    }
                },
                Err(e) => {
                    eprintln!("warning: flow mode skipped: {e}");
                    None
                }
            };
            let ladder = [
                CompressionConfig::new(1, 25_000_000, 1),
                CompressionConfig::new(7, 2_500_000, 10),
                CompressionConfig::new(14, 250_000, 1),
                CompressionConfig::new(17, 25_000, 10),
            ];
            let apps = if quick {
                vec![AppKind::Fftw]
            } else {
                vec![AppKind::Fftw, AppKind::Milc]
            };
            let mut clean = true;
            for app in apps {
                eprintln!("auditing {} on the gated ladder", app.name());
                let journal_path = std::env::temp_dir().join(format!(
                    "anp-audit-{}-{}.journal",
                    app.name(),
                    std::process::id()
                ));
                let report = run_oracle(
                    &cfg,
                    app,
                    &ladder,
                    flow.as_deref(),
                    &journal_path,
                    &mut |line| eprintln!("  {line}"),
                )
                .unwrap_or_else(|e| fail(e));
                println!("{report}");
                clean &= report.is_clean();
            }
            if !clean {
                std::process::exit(1);
            }
        }
        "predict" => {
            let a = parse_app(args.next());
            let b = parse_app(args.next());
            let apps = if a == b { vec![a] } else { vec![a, b] };
            eprintln!("measuring look-up table (this takes a few minutes)...");
            let calib =
                calibrate_with(backend, &cfg, MuPolicy::MinLatency).unwrap_or_else(|e| fail(e));
            let sweep: Vec<CompressionConfig> = CompressionConfig::paper_sweep()
                .into_iter()
                .enumerate()
                .filter(|(i, _)| i % 5 == (i / 5) % 5)
                .map(|(_, c)| c)
                .collect();
            let (table, _) =
                LookupTable::measure_recorded_with(backend, &cfg, calib, &apps, &sweep, |line| {
                    eprintln!("  {line}");
                })
                .unwrap_or_else(|e| fail(e));
            let (study, _) =
                Study::measure_profiles_recorded_with(backend, &cfg, table, &apps, |_| {})
                    .unwrap_or_else(|e| fail(e));
            let models = all_models();
            for (victim, other) in [(a, b), (b, a)] {
                let outcome = study.predict_pair(victim, other, &models);
                println!("{} co-run with {}:", victim.name(), other.name());
                for (model, pred) in &outcome.predicted {
                    println!("  {:<15} predicts {:+6.1}%", model, pred);
                }
                if a == b {
                    break;
                }
            }
        }
        "sched" => {
            let mut quick = false;
            let mut model = ModelKind::Queue;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--quick" => quick = true,
                    "--model" => {
                        let v = args.next().unwrap_or_else(|| usage());
                        model = v.parse().unwrap_or_else(|_| {
                            eprintln!("unknown model '{v}'");
                            usage()
                        });
                    }
                    _ => usage(),
                }
            }
            let mut sopts = if quick {
                StudyOpts::quick(seed, jobs.unwrap_or(1))
            } else {
                StudyOpts::full(seed, jobs.unwrap_or(1))
            };
            if jobs.is_none() {
                sopts.cfg.jobs = Parallelism::Auto;
            }
            // Ground truth is always DES-measured (the reference engine);
            // the global --backend selects the engine the predictive
            // policy consults for its placement decisions.
            let engine = match backend_name.as_str() {
                "des" => DecisionEngine::Des,
                _ => DecisionEngine::Flow,
            };
            let journal = open_journal(resume.as_deref());
            let campaign = measure_truth_supervised(
                &HookedBackend(DesBackend),
                &sopts.cfg,
                &sopts.apps,
                &sopts.ladder,
                &supervisor,
                journal.as_ref(),
                |line| eprintln!("  [truth] {line}"),
            )
            .unwrap_or_else(|e| fail(e));
            if !campaign.is_complete() {
                campaign.report(|line| eprintln!("{line}"));
                eprintln!(
                    "truth incomplete: scheduling skipped (a holed pair grid would bias regret)"
                );
                if let Some(p) = &resume {
                    eprintln!("(re-run with --resume {} to complete)", p.display());
                }
                std::process::exit(campaign.exit_code());
            }
            let truth = campaign
                .truth
                .as_ref()
                .expect("complete campaign has truth");
            let specs = [
                PolicySpec::Predictive(model, engine),
                PolicySpec::FirstFit,
                PolicySpec::Random,
                PolicySpec::SoloOnly,
                PolicySpec::Oracle,
            ];
            let outcomes = run_suite(&sopts, truth, &specs, |line| eprintln!("  [sched] {line}"))
                .unwrap_or_else(|e| fail(e));
            // The predictive policy's realized schedule for the first
            // stream, then the cross-policy summary. Wall-clock detail
            // stays on stderr so stdout is byte-identical for any --jobs.
            let predictive = &outcomes[0];
            if let Some((stream_seed, sched)) = predictive.per_seed.first() {
                println!("{} schedule, stream seed {stream_seed}:", predictive.label);
                print!("{}", render_schedule(sched));
                println!();
            }
            print!("{}", render_summary(&outcomes));
            if predictive.decisions > 0 {
                eprintln!(
                    "decision latency ({}): {:.3}ms per decision over {} decisions",
                    predictive.label,
                    predictive.decision_wall.as_secs_f64() * 1e3 / predictive.decisions as f64,
                    predictive.decisions
                );
            }
            std::process::exit(campaign.exit_code());
        }
        "monitor" => {
            let quick = match args.next() {
                None => false,
                Some(a) if a == "--quick" => true,
                Some(_) => usage(),
            };
            let mut mopts = if quick {
                MonitorOpts::quick(seed, jobs.unwrap_or(1))
            } else {
                MonitorOpts::full(seed, jobs.unwrap_or(1))
            };
            if jobs.is_none() {
                mopts.cfg.jobs = Parallelism::Auto;
            }
            // Progress narration (cell-by-cell results) goes to stderr;
            // stdout carries only the final wall-clock-free tables, so it
            // is byte-identical for any --jobs setting.
            let report = run_monitor_study(&mopts, |line| eprintln!("  [monitor] {line}"))
                .unwrap_or_else(|e| fail(e));
            print!("{}", render_monitor_report(&mopts, &report));
            let violations = gate_violations(&mopts, &report);
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!("gate violation: {v}");
                }
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}
