//! `anp` — command-line front end for the active-measurement toolkit.
//!
//! ```text
//! anp calibrate                 # idle-switch calibration
//! anp probe <APP>               # impact experiment: APP's switch footprint
//! anp sweep <APP>               # degradation ladder for APP (mini Fig. 7)
//! anp losses <APP>              # degradation vs packet-loss rate for APP
//! anp predict <APP> <APP>       # predict mutual slowdown of a pairing
//! anp apps                      # list the built-in application proxies
//! ```
//!
//! Global flags: `--seed <n>`, `--jobs <n>`, `--backend <des|flow>`. All
//! commands run on the simulated Cab switch; see the `anp-bench` binaries
//! for the full paper harnesses.

use anp_core::{
    all_models, calibrate_with, degradation_percent, loss_sweep, run_sweep, Backend, BackendError,
    ExperimentConfig, LookupTable, MuPolicy, Study, WorkloadSpec,
};
use anp_simmpi::ReliabilityConfig;
use anp_simnet::SimDuration;
use anp_workloads::{AppKind, CompressionConfig};

fn usage() -> ! {
    eprintln!(
        "usage: anp [--seed N] [--jobs N] [--backend des|flow] <command>\n\
         commands:\n\
         \x20 calibrate            idle-switch calibration report\n\
         \x20 apps                 list application proxies\n\
         \x20 probe <APP>          measure APP's switch utilization\n\
         \x20 sweep <APP>          degradation vs utilization ladder for APP\n\
         \x20 losses <APP>         degradation vs packet-loss rate for APP\n\
         \x20 predict <A> <B>      predict A and B's mutual slowdown\n\
         APP is one of: FFTW, Lulesh, MCB, MILC, VPFFT, AMG (case-insensitive)\n\
         --jobs N runs experiment sweeps on N worker threads (default: all\n\
         cores; results are identical for any setting, 1 = serial)\n\
         --backend selects the measurement engine: 'des' (packet-level\n\
         simulation, the default and reference) or 'flow' (analytic\n\
         flow-level model; see DESIGN.md for its error envelope)"
    );
    std::process::exit(2);
}

/// Prints an error and exits with status 1 (experiment-level failures,
/// as opposed to `usage()` for malformed invocations).
fn fail<E: std::fmt::Display>(err: E) -> ! {
    eprintln!("error: {err}");
    std::process::exit(1);
}

fn parse_app(arg: Option<String>) -> AppKind {
    let Some(name) = arg else { usage() };
    match AppKind::from_name(&name) {
        Some(app) => app,
        None => {
            eprintln!("unknown application '{name}'");
            usage()
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut seed = 0xA11CEu64;
    let mut jobs: Option<usize> = None;
    let mut backend_name = "des".to_owned();
    while let Some(a) = args.peek() {
        if a == "--seed" {
            args.next();
            let v = args.next().unwrap_or_else(|| usage());
            seed = v.parse().unwrap_or_else(|_| usage());
        } else if a == "--jobs" {
            args.next();
            let v = args.next().unwrap_or_else(|| usage());
            jobs = Some(v.parse().unwrap_or_else(|_| usage()));
        } else if a == "--backend" {
            args.next();
            backend_name = args.next().unwrap_or_else(|| usage());
        } else {
            break;
        }
    }
    let mut cfg = ExperimentConfig::cab().with_seed(seed);
    if let Some(n) = jobs {
        cfg = cfg.with_jobs(n);
    }
    if let Err(e) = cfg.switch.validate() {
        fail(e);
    }
    // Resolve the measurement engine and reject configurations it cannot
    // honor up front: a typed error on stderr and exit 1, never a silent
    // fallback to another backend.
    let backend: Box<dyn Backend> =
        anp_flowsim::backend_from_name(&backend_name).unwrap_or_else(|e| fail(e));
    let backend = backend.as_ref();
    if let Err(e) = backend.validate(&cfg) {
        fail(e);
    }
    let Some(cmd) = args.next() else { usage() };

    match cmd.as_str() {
        "calibrate" => {
            let idle = backend
                .measure_impact_profile(&cfg, WorkloadSpec::Idle)
                .unwrap_or_else(|e| fail(e));
            let calib =
                calibrate_with(backend, &cfg, MuPolicy::MinLatency).unwrap_or_else(|e| fail(e));
            println!(
                "idle probe latency: mean {:.3}us, sd {:.3}us, min {:.3}us (n={})",
                idle.mean(),
                idle.std_dev(),
                idle.min(),
                idle.count()
            );
            println!(
                "queue model: mu = {:.4} packets/us, Var(S) = {:.4} us^2",
                calib.mu, calib.var_s
            );
            println!(
                "idle utilization reading: {:.1}%",
                calib.utilization(&idle) * 100.0
            );
        }
        "apps" => {
            for app in AppKind::ALL {
                let l = app.layout();
                println!(
                    "{:<7} {:>4} ranks on {:>2} nodes ({} per node)",
                    app.name(),
                    l.ranks(),
                    l.nodes,
                    l.per_node
                );
            }
        }
        "probe" => {
            let app = parse_app(args.next());
            let calib =
                calibrate_with(backend, &cfg, MuPolicy::MinLatency).unwrap_or_else(|e| fail(e));
            let p = backend
                .measure_impact_profile(&cfg, WorkloadSpec::App(app))
                .unwrap_or_else(|e| fail(e));
            println!(
                "{}: probe mean {:.2}us (sd {:.2}us, n={})",
                app.name(),
                p.mean(),
                p.std_dev(),
                p.count()
            );
            println!(
                "estimated switch utilization: {:.1}%",
                calib.utilization(&p) * 100.0
            );
        }
        "sweep" => {
            let app = parse_app(args.next());
            let calib =
                calibrate_with(backend, &cfg, MuPolicy::MinLatency).unwrap_or_else(|e| fail(e));
            let solo = backend.measure_solo_runtime(&cfg, app).unwrap_or_else(|e| fail(e));
            println!("{} solo: {}", app.name(), solo);
            println!("{:<18} {:>7} {:>12}", "config", "util", "degradation");
            let ladder = [
                CompressionConfig::new(1, 25_000_000, 1),
                CompressionConfig::new(7, 2_500_000, 10),
                CompressionConfig::new(14, 250_000, 1),
                CompressionConfig::new(17, 25_000, 10),
            ];
            // Each rung is two independent simulations (impact + runtime);
            // fan all of them out and print in ladder order.
            let rungs = run_sweep(
                cfg.jobs,
                ladder
                    .iter()
                    .map(|comp| {
                        let cfg = &cfg;
                        move || {
                            (
                                backend
                                    .measure_impact_profile(cfg, WorkloadSpec::Compression(comp)),
                                backend.measure_compression_run(cfg, app, comp),
                            )
                        }
                    })
                    .collect(),
            );
            for (comp, (p, t)) in ladder.iter().zip(rungs) {
                let p = p.unwrap_or_else(|e| fail(e));
                let t = t.unwrap_or_else(|e| fail(e));
                println!(
                    "{:<18} {:>6.1}% {:>+11.1}%",
                    comp.label(),
                    calib.utilization(&p) * 100.0,
                    degradation_percent(solo, t)
                );
            }
        }
        "losses" => {
            let app = parse_app(args.next());
            // The loss sweep installs a FaultPlan per loss point, so it
            // needs a fault-capable engine; reject others before any
            // simulation runs rather than falling back silently.
            if !backend.supports_faults() {
                fail(BackendError::UnsupportedOption {
                    backend: backend.name(),
                    option: "packet-loss fault injection (the losses sweep)".to_owned(),
                });
            }
            // Timeout well above congested delivery latency (spurious
            // retransmits snowball), loss rates low enough that a 24KB /
            // 24-packet message still survives most attempts: the ARQ is
            // message-grained, so loss x packets-per-message must stay
            // well below 1.
            let rel = ReliabilityConfig {
                retransmit_timeout: SimDuration::from_millis(50),
                max_retries: 10,
            };
            let solo = backend.measure_solo_runtime(&cfg, app).unwrap_or_else(|e| fail(e));
            println!("{} lossless: {}", app.name(), solo);
            println!("{:<10} {:>12} {:>12}", "loss", "runtime", "degradation");
            let mut failures = 0u32;
            for (loss, res) in loss_sweep(&cfg, app, &[0.0, 1e-4, 5e-4, 1e-3], rel) {
                match res {
                    Ok(t) => println!(
                        "{:<10} {:>12} {:>+11.1}%",
                        format!("{:.2}%", loss * 100.0),
                        format!("{t}"),
                        degradation_percent(solo, t)
                    ),
                    Err(e) => {
                        // The table row stays on stdout; the error detail
                        // goes to stderr, and the command exits nonzero.
                        println!(
                            "{:<10} {:>12} (failed)",
                            format!("{:.2}%", loss * 100.0),
                            "-"
                        );
                        eprintln!("error: loss {:.2}%: {e}", loss * 100.0);
                        failures += 1;
                    }
                }
            }
            if failures > 0 {
                eprintln!("error: {failures} loss point(s) did not complete");
                std::process::exit(1);
            }
        }
        "predict" => {
            let a = parse_app(args.next());
            let b = parse_app(args.next());
            let apps = if a == b { vec![a] } else { vec![a, b] };
            eprintln!("measuring look-up table (this takes a few minutes)...");
            let calib =
                calibrate_with(backend, &cfg, MuPolicy::MinLatency).unwrap_or_else(|e| fail(e));
            let sweep: Vec<CompressionConfig> = CompressionConfig::paper_sweep()
                .into_iter()
                .enumerate()
                .filter(|(i, _)| i % 5 == (i / 5) % 5)
                .map(|(_, c)| c)
                .collect();
            let (table, _) = LookupTable::measure_recorded_with(
                backend,
                &cfg,
                calib,
                &apps,
                &sweep,
                |line| {
                    eprintln!("  {line}");
                },
            )
            .unwrap_or_else(|e| fail(e));
            let (study, _) = Study::measure_profiles_recorded_with(backend, &cfg, table, &apps, |_| {})
                .unwrap_or_else(|e| fail(e));
            let models = all_models();
            for (victim, other) in [(a, b), (b, a)] {
                let outcome = study.predict_pair(victim, other, &models);
                println!("{} co-run with {}:", victim.name(), other.name());
                for (model, pred) in &outcome.predicted {
                    println!("  {:<15} predicts {:+6.1}%", model, pred);
                }
                if a == b {
                    break;
                }
            }
        }
        _ => usage(),
    }
}
