//! Umbrella crate for the Active Network Probe workspace.
//!
//! Re-exports the public API of every workspace crate so integration tests
//! and examples can use a single `active_netprobe::` namespace.

pub use anp_core as core;
pub use anp_metrics as metrics;
pub use anp_simmpi as simmpi;
pub use anp_simnet as simnet;
pub use anp_workloads as workloads;
