//! End-to-end prediction pipeline on a reduced universe: measure two
//! applications in isolation, build a small look-up table, predict their
//! pairings with all four models, and check the predictions against
//! measured co-runs.
//!
//! This is the integration-level version of the paper's §V evaluation,
//! scaled down (2 apps × 4 CompressionB configurations) so it runs in a
//! debug-build test suite.

use active_netprobe::core::{
    all_models, calibrate, ExperimentConfig, LookupTable, ModelKind, MuPolicy, Study,
};
use active_netprobe::workloads::{AppKind, CompressionConfig};

fn reduced_sweep() -> Vec<CompressionConfig> {
    vec![
        CompressionConfig::new(1, 25_000_000, 1),
        CompressionConfig::new(7, 2_500_000, 10),
        CompressionConfig::new(14, 250_000, 1),
        CompressionConfig::new(17, 25_000, 10),
    ]
}

#[test]
fn full_pipeline_predicts_pairings_sanely() {
    let cfg = ExperimentConfig::cab().with_seed(21);
    let apps = [AppKind::Fftw, AppKind::Mcb];

    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");
    let table = LookupTable::measure(&cfg, calib, &apps, &reduced_sweep(), |_| {}).expect("table");
    let (lo, hi) = table.utilization_range();
    assert!(lo < hi, "sweep must span a utilization range");
    assert!(hi > 0.7, "heaviest config must be heavy (got {hi})");

    let study = Study::measure_profiles(&cfg, table, &apps, |_| {}).expect("profiles");
    let models = all_models();
    let mut outcomes = study.predict_all(&apps, &models);
    assert_eq!(outcomes.len(), 4, "2 apps -> 4 ordered pairings");
    for o in outcomes.iter_mut() {
        assert_eq!(o.predicted.len(), 4, "all models must predict");
        study.measure_pair(&cfg, o).expect("ground truth");
    }

    // Structural expectations from the paper:
    // FFTW hurt by FFTW must far exceed FFTW hurt by MCB …
    let find = |v: AppKind, w: AppKind| {
        outcomes
            .iter()
            .find(|o| o.victim == v && o.other == w)
            .unwrap()
    };
    let ff = find(AppKind::Fftw, AppKind::Fftw).measured.unwrap();
    let fm = find(AppKind::Fftw, AppKind::Mcb).measured.unwrap();
    assert!(
        ff > fm + 5.0,
        "FFTW+FFTW ({ff}%) must exceed FFTW+MCB ({fm}%)"
    );
    // … and MCB must barely notice anything.
    let mf = find(AppKind::Mcb, AppKind::Fftw).measured.unwrap();
    assert!(mf.abs() < 10.0, "MCB must stay nearly insensitive ({mf}%)");

    // The queue model must separate the heavy pairing from the light one.
    let q_ff = find(AppKind::Fftw, AppKind::Fftw).predicted[&ModelKind::Queue];
    let q_fm = find(AppKind::Fftw, AppKind::Mcb).predicted[&ModelKind::Queue];
    assert!(
        q_ff > q_fm,
        "queue model must rank FFTW-partner above MCB-partner ({q_ff} vs {q_fm})"
    );
    // And its error on the light pairings must be small.
    let e = find(AppKind::Mcb, AppKind::Fftw)
        .abs_error(ModelKind::Queue)
        .unwrap();
    assert!(
        e < 15.0,
        "queue-model error on a light pairing too big: {e}"
    );
}

#[test]
fn study_is_deterministic() {
    let cfg = ExperimentConfig::cab().with_seed(5);
    let apps = [AppKind::Milc];
    let sweep = vec![CompressionConfig::new(7, 2_500_000, 10)];
    let run = || {
        let calib = calibrate(&cfg, MuPolicy::MinLatency).unwrap();
        let table = LookupTable::measure(&cfg, calib, &apps, &sweep, |_| {}).unwrap();
        let entry = &table.entries[0];
        (
            entry.profile.mean().to_bits(),
            entry.utilization.to_bits(),
            entry.slowdown[&AppKind::Milc].to_bits(),
        )
    };
    assert_eq!(run(), run(), "identical configs must reproduce bit-exactly");
}
