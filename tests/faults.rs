//! Fault-injection integration tests: the full stack (fault plan →
//! fabric → reliability layer → stall diagnostics) exercised through the
//! public `active_netprobe::` API.
//!
//! Three properties from the fault model's contract:
//!
//! 1. **Determinism** — a lossy fabric under a fixed seed replays
//!    bit-identically: same finish time, same phase totals, same drop and
//!    retransmit counters.
//! 2. **Recovery** — a ping-pong job over a 1% lossy fabric completes via
//!    retransmission, with exact wire-message accounting (every wire
//!    message is either one of the logical sends or a counted retransmit).
//! 3. **Bounded failure** — a permanently dead link exhausts the retry
//!    budget and surfaces a structured `StallReport` naming the failed
//!    send and the blocked receiver, instead of hanging forever.

use active_netprobe::simmpi::{Op, Program, ReliabilityConfig, RunOutcome, Scripted, Src, World};
use active_netprobe::simnet::{
    FaultPlan, FaultWindow, LinkFault, LinkId, LinkSelector, NodeId, SimDuration, SimTime,
    SwitchConfig,
};

/// Two ranks on two nodes exchanging `rounds` tagged 1 KB messages each
/// way, every round synchronized with a `WaitAll`.
fn ping_pong(world: &mut World, rounds: u32) -> active_netprobe::simmpi::JobId {
    let mut a = Vec::new();
    let mut b = Vec::new();
    for r in 0..rounds {
        a.push(Op::Isend {
            dst: 1,
            bytes: 1024,
            tag: r,
        });
        a.push(Op::Irecv {
            src: Src::Rank(1),
            tag: r,
        });
        a.push(Op::WaitAll);
        b.push(Op::Isend {
            dst: 0,
            bytes: 1024,
            tag: r,
        });
        b.push(Op::Irecv {
            src: Src::Rank(0),
            tag: r,
        });
        b.push(Op::WaitAll);
    }
    a.push(Op::Stop);
    b.push(Op::Stop);
    world.add_job(
        "ping-pong",
        vec![
            (Box::new(Scripted::new(a)) as Box<dyn Program>, NodeId(0)),
            (Box::new(Scripted::new(b)) as Box<dyn Program>, NodeId(1)),
        ],
    )
}

fn lossy_world(loss: f64, seed: u64) -> World {
    let cfg = SwitchConfig::tiny_deterministic()
        .with_fault_plan(FaultPlan::uniform_loss(loss).with_seed(seed));
    let mut w = World::new(cfg);
    w.set_reliability(ReliabilityConfig {
        retransmit_timeout: SimDuration::from_micros(100),
        max_retries: 10,
    });
    w
}

/// One full lossy ping-pong run, reduced to everything that must replay
/// identically under a fixed seed.
fn lossy_run_fingerprint(rounds: u32) -> (SimTime, u64, u64, u64, u64, u64) {
    let mut w = lossy_world(0.01, 42);
    let job = ping_pong(&mut w, rounds);
    w.enable_tracing();
    let outcome = w.run_until_job_done(job, SimTime::from_secs(30));
    let RunOutcome::Completed { at } = outcome else {
        panic!("lossy ping-pong must complete via retransmission: {outcome:?}");
    };
    let totals = w.job_phase_totals(job);
    let stats = w.fabric().stats().clone();
    let rel = w.reliability_stats();
    (
        at,
        totals.total_ns(),
        stats.messages_sent,
        stats.packets_dropped,
        rel.retransmits,
        rel.duplicates,
    )
}

#[test]
fn lossy_run_replays_bit_identically_under_a_fixed_seed() {
    let a = lossy_run_fingerprint(200);
    let b = lossy_run_fingerprint(200);
    assert_eq!(a, b, "same seed + same fault plan must replay identically");
    // A different fault seed must actually perturb the run, or the
    // fingerprint above proves nothing.
    let mut w = lossy_world(0.01, 43);
    let job = ping_pong(&mut w, 200);
    let outcome = w.run_until_job_done(job, SimTime::from_secs(30));
    let RunOutcome::Completed { at } = outcome else {
        panic!("seed 43 run must also complete: {outcome:?}");
    };
    assert_ne!(a.0, at, "different fault seeds should not collide");
}

#[test]
fn ping_pong_over_lossy_link_completes_with_exact_accounting() {
    let rounds = 200;
    let mut w = lossy_world(0.01, 42);
    let job = ping_pong(&mut w, rounds);
    assert!(
        w.run_until_job_done(job, SimTime::from_secs(30))
            .completed(),
        "1% loss must be recoverable"
    );
    let stats = w.fabric().stats();
    let rel = w.reliability_stats();
    assert!(rel.retransmits > 0, "this seed must exercise recovery");
    assert_eq!(rel.failures, 0, "no send may exhaust its budget at 1%");
    // Wire accounting: the 2·rounds logical messages plus one wire message
    // per retransmit, nothing else; every wire message either delivered
    // or was dropped by the fault layer.
    assert_eq!(stats.messages_sent, u64::from(2 * rounds) + rel.retransmits);
    assert_eq!(
        stats.messages_sent,
        stats.messages_delivered + stats.messages_dropped
    );
    // App-level totals stay exact despite loss: duplicates are suppressed,
    // so delivered = logical + spurious-retransmit copies that arrived.
    assert_eq!(
        stats.messages_delivered,
        u64::from(2 * rounds) + rel.duplicates
    );
}

#[test]
fn dead_link_fails_with_a_structured_stall_report_not_a_hang() {
    // Node 0's uplink is dead for the whole run: its send can never get
    // out, the retry budget burns down, and the run must end in a
    // diagnosable stall rather than spinning to the horizon.
    let fault = LinkFault::on(LinkSelector::Link(LinkId::NodeUp(NodeId(0))))
        .with_down(FaultWindow::new(SimTime::ZERO, SimTime::from_secs(3600)));
    let cfg = SwitchConfig::tiny_deterministic()
        .with_fault_plan(FaultPlan::none().with_link_fault(fault));
    let run = || {
        let mut w = World::new(cfg.clone());
        w.set_reliability(ReliabilityConfig {
            retransmit_timeout: SimDuration::from_micros(50),
            max_retries: 2,
        });
        let job = ping_pong(&mut w, 1);
        let outcome = w.run_until_job_done(job, SimTime::from_secs(30));
        assert!(!outcome.completed(), "nothing can cross a dead link");
        let report = outcome
            .stall_report()
            .expect("failed run must carry a stall report")
            .clone();
        report
    };
    let report = run();
    assert_eq!(report.job_name, "ping-pong");
    // The send from rank 0 burned its budget: 1 original + 2 retries.
    assert_eq!(report.failed_sends.len(), 1);
    let failed = &report.failed_sends[0];
    assert_eq!((failed.src, failed.dst, failed.tag), (0, 1, 0));
    assert_eq!(failed.attempts, 3);
    // Rank 0 still finishes: its send completed locally at injection and
    // rank 1's reply crosses healthy links. Only the receiver of the lost
    // message hangs, and the report names the receive that cannot match.
    assert_eq!(report.blocked.len(), 1);
    let text = report.to_string();
    assert!(
        text.contains("ping-pong"),
        "report must name the job: {text}"
    );
    assert!(
        text.contains("rank 1"),
        "report must name blocked ranks: {text}"
    );
    // Deterministic: the diagnosis itself replays identically.
    assert_eq!(run().to_string(), text);
}
