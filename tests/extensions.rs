//! Integration tests of the extensions beyond the paper's scope: the
//! fat-tree topology, the rendezvous protocol, the extra collectives, and
//! phase tracing — exercised together through the whole stack.

use active_netprobe::core::{Calibration, MuPolicy, TimedSeries};
use active_netprobe::simmpi::{Op, Program, Scripted, Src, World};
use active_netprobe::simnet::{NodeId, SimDuration, SimTime, SwitchConfig, Topology};
use active_netprobe::workloads::apps::milc::{build_milc, MilcParams};
use active_netprobe::workloads::{build_impactb, ImpactConfig, Layout, RunMode};

fn boxed(p: impl Program + 'static) -> Box<dyn Program> {
    Box::new(p)
}

#[test]
fn application_runs_unchanged_on_a_fat_tree() {
    // A 144-rank MILC spanning 4 leaves of a Cab-like fat tree: the same
    // program that runs on the paper's single switch must run across the
    // tree, just slower (cross-leaf halo hops).
    let single = {
        let mut w = World::new(SwitchConfig::cab().with_seed(5));
        let members = build_milc(
            &MilcParams {
                iterations: 5,
                ..MilcParams::default()
            },
            &Layout::cab_standard(),
            RunMode::Iterations(5),
            9,
        );
        let job = w.add_job("milc", members);
        assert!(w
            .run_until_job_done(job, SimTime::from_secs(30))
            .completed());
        w.job_finish_time(job).unwrap()
    };
    let (tree, spine_packets) = {
        // 4 leaves × 18 nodes: spread the 144 ranks over all 72 nodes
        // (2 per node), so most halo partners sit on other leaves.
        let mut w = World::new(SwitchConfig::cab_fat_tree(4, 4).with_seed(5));
        let members = build_milc(
            &MilcParams {
                iterations: 5,
                ..MilcParams::default()
            },
            &Layout::new(72, 2),
            RunMode::Iterations(5),
            9,
        );
        let job = w.add_job("milc", members);
        assert!(w
            .run_until_job_done(job, SimTime::from_secs(30))
            .completed());
        let spine_packets: u64 = (4..8).map(|sw| w.fabric().central_stats(sw).served).sum();
        (w.job_finish_time(job).unwrap(), spine_packets)
    };
    // The same program ran across the tree, and its cross-leaf traffic
    // really climbed through the spines.
    assert!(spine_packets > 1_000, "spines must carry halo traffic");
    // Fat-tree runtime is comparable: the extra hops cost latency but the
    // lower rank density (2/node vs 8/node) and 4x hardware give it back.
    let ratio = tree.as_nanos() as f64 / single.as_nanos() as f64;
    assert!(
        (0.25..4.0).contains(&ratio),
        "tree {tree} vs single {single}: implausible ratio {ratio}"
    );
}

#[test]
fn probes_calibrate_on_a_fat_tree_leaf() {
    // The paper's methodology applied to one leaf of the extension
    // topology: probes on leaf-0 nodes must read an idle-like profile even
    // though the fabric is a tree.
    let mut w = World::new(SwitchConfig::cab_fat_tree(2, 2).with_seed(3));
    let cfg = ImpactConfig {
        period: SimDuration::from_micros(500),
        ..ImpactConfig::default()
    };
    // Probe pairs over the first 18 nodes = leaf 0 only.
    let (members, sink) = build_impactb(&cfg, 18);
    w.add_job("impactb", members);
    w.run_until(SimTime::from_millis(40));
    let series = TimedSeries::with_warmup(sink.borrow().clone(), 0.1);
    let profile = series.profile();
    assert!(
        (1.1..1.6).contains(&profile.mean()),
        "leaf-local probes must look like the single-switch idle ({})",
        profile.mean()
    );
    let calib = Calibration::from_idle_profile(&profile, MuPolicy::MinLatency).unwrap();
    assert!(calib.utilization(&profile) < 0.25);
    // Spines stayed idle: leaf-local probe traffic never climbs the tree.
    assert_eq!(w.fabric().central_stats(2).arrivals, 0);
    assert_eq!(w.fabric().central_stats(3).arrivals, 0);
}

#[test]
fn rendezvous_changes_compressionb_send_semantics_not_results() {
    // CompressionB's 40 KB messages straddle real MPI eager/rendezvous
    // thresholds. Under a 16 KB threshold the benchmark must still run and
    // deliver everything; its traffic simply handshakes first.
    use active_netprobe::workloads::{build_compressionb, CompressionConfig};
    let run = |threshold: u64| {
        let mut w = World::new(SwitchConfig::cab().with_seed(4));
        let comp = CompressionConfig::new(4, 2_500_000, 1);
        w.add_job("comp", build_compressionb(&comp, 18, 2, 2_600_000_000));
        w.set_eager_threshold(threshold);
        w.run_until(SimTime::from_millis(30));
        (
            w.fabric().stats().messages_sent,
            w.fabric().stats().messages_delivered,
        )
    };
    let (eager_sent, eager_delivered) = run(u64::MAX);
    let (rdv_sent, rdv_delivered) = run(16 * 1024);
    assert!(eager_sent > 0 && rdv_sent > 0);
    // Rendezvous wires ~3 messages per payload (RTS + CTS + data).
    assert!(
        rdv_sent > eager_sent * 2,
        "handshakes must appear on the wire: {rdv_sent} vs {eager_sent}"
    );
    // No messages stuck in either mode (allow in-flight tail at horizon).
    assert!(eager_delivered as f64 >= eager_sent as f64 * 0.8);
    assert!(rdv_delivered as f64 >= rdv_sent as f64 * 0.8);
}

#[test]
fn rooted_collectives_compose_with_stencils_at_scale() {
    // A program mixing the extension collectives with p2p, at 64 ranks on
    // the Cab fabric.
    let mut w = World::new(SwitchConfig::cab().with_seed(6));
    let n = 64u32;
    let members: Vec<_> = (0..n)
        .map(|r| {
            let succ = (r + 1) % n;
            let pred = (r + n - 1) % n;
            (
                boxed(Scripted::new(vec![
                    Op::Bcast {
                        root: 0,
                        bytes: 32 * 1024,
                    },
                    Op::Irecv {
                        src: Src::Rank(pred),
                        tag: 5,
                    },
                    Op::Isend {
                        dst: succ,
                        bytes: 2_048,
                        tag: 5,
                    },
                    Op::WaitAll,
                    Op::Reduce {
                        root: n - 1,
                        bytes: 4 * 1024,
                    },
                    Op::Allgather {
                        bytes_per_rank: 512,
                    },
                    Op::Stop,
                ])),
                NodeId(r % 18),
            )
        })
        .collect();
    let job = w.add_job("mixed", members);
    assert!(w
        .run_until_job_done(job, SimTime::from_secs(30))
        .completed());
}

#[test]
fn tracing_exposes_an_apps_network_wait_at_scale() {
    // MILC at paper scale with tracing: the waiting fraction must be
    // meaningful but not dominant (it is the intermediate app).
    let mut w = World::new(SwitchConfig::cab().with_seed(8));
    let members = build_milc(
        &MilcParams {
            iterations: 10,
            ..MilcParams::default()
        },
        &Layout::cab_standard(),
        RunMode::Iterations(10),
        2,
    );
    let job = w.add_job("milc", members);
    w.enable_tracing();
    assert!(w
        .run_until_job_done(job, SimTime::from_secs(30))
        .completed());
    let t = w.job_phase_totals(job);
    let wait = t.waiting_fraction();
    assert!(
        (0.05..0.6).contains(&wait),
        "MILC's network-wait fraction out of plausible range: {wait}"
    );
    assert!(t.computing_fraction() > 0.3, "{t:?}");
}

#[test]
fn topology_enum_is_exhaustively_usable() {
    // Compile-time-ish guard: both variants construct and validate.
    for topo in [
        Topology::SingleSwitch,
        Topology::FatTree {
            leaves: 3,
            spines: 2,
        },
    ] {
        let mut cfg = SwitchConfig::cab();
        cfg.topology = topo;
        if let Topology::FatTree { leaves, .. } = topo {
            cfg.nodes = leaves * 6;
        }
        cfg.validate().expect("both topologies must validate");
        let w = World::new(cfg);
        assert!(w.fabric().switch_count() >= 1);
    }
}
