//! Integration tests for `anp lint`: output determinism across worker
//! counts, a clean verdict on the shipped tree, and a seeded fixture
//! tree that must trip every diagnostic code exactly once.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn anp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_anp"))
}

fn run(args: &[&str]) -> Output {
    let out = anp()
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch anp {args:?}: {e}"));
    assert!(
        out.stderr.is_empty(),
        "anp {args:?} wrote to stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn workspace_root() -> &'static str {
    env!("CARGO_MANIFEST_DIR")
}

#[test]
fn shipped_tree_lints_clean() {
    let out = run(&["lint", "--root", workspace_root()]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the shipped tree must lint clean:\n{text}"
    );
    assert!(text.contains("anp-lint: clean"), "{text}");
}

#[test]
fn json_is_byte_identical_across_jobs() {
    let one = run(&["--jobs", "1", "lint", "--json", "--root", workspace_root()]);
    let eight = run(&["--jobs", "8", "lint", "--json", "--root", workspace_root()]);
    assert!(one.status.success() && eight.status.success());
    assert_eq!(
        one.stdout, eight.stdout,
        "anp lint --json must be byte-identical for any --jobs"
    );
    let text = String::from_utf8_lossy(&one.stdout);
    assert!(text.contains("\"schema\":\"anp-lint-v1\""), "{text}");
    // A second identical invocation must also be byte-identical
    // (no wall-clock or entropy leaks into the report).
    let again = run(&["--jobs", "1", "lint", "--json", "--root", workspace_root()]);
    assert_eq!(one.stdout, again.stdout);
}

#[test]
fn quick_mode_scans_fewer_files() {
    let full = run(&["lint", "--json", "--root", workspace_root()]);
    let quick = run(&["lint", "--json", "--quick", "--root", workspace_root()]);
    assert!(full.status.success() && quick.status.success());
    let files = |raw: &[u8]| -> u64 {
        let text = String::from_utf8_lossy(raw).into_owned();
        let tail = text
            .split("\"files_scanned\":")
            .nth(1)
            .unwrap_or_else(|| panic!("no files_scanned in {text}"))
            .to_owned();
        let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
        digits
            .parse()
            .unwrap_or_else(|e| panic!("bad files_scanned in {text}: {e}"))
    };
    assert!(
        files(&full.stdout) > files(&quick.stdout),
        "--quick must skip the tests/benches/examples trees"
    );
}

/// Writes one file per diagnostic code into a scratch workspace, each
/// seeding exactly one violation of that code.
fn write_fixture_tree(root: &Path) {
    let seeds: &[(&str, &str)] = &[
        (
            "crates/simnet/src/seed_d000.rs",
            "//! Seeds D000.\n\n/// Head of the queue.\npub fn head(q: &[u64]) -> u64 {\n    // anp-lint: allow(D003)\n    q.first().copied().unwrap_or(0)\n}\n",
        ),
        (
            "crates/simnet/src/seed_d001.rs",
            "//! Seeds D001.\n\n/// Builds a map (one randomized-hash mention).\npub fn build() -> usize {\n    std::collections::HashMap::<u64, u64>::new().len()\n}\n",
        ),
        (
            "crates/simnet/src/seed_d002.rs",
            "//! Seeds D002.\n\n/// Reads the host clock (one wall-clock mention).\npub fn stamp() -> f64 {\n    std::time::Instant::now().elapsed().as_secs_f64()\n}\n",
        ),
        (
            "crates/core/src/seed_d003.rs",
            "//! Seeds D003.\n\n/// First sample.\npub fn first(v: &[f64]) -> f64 {\n    *v.first().unwrap()\n}\n",
        ),
        (
            "crates/simnet/src/seed_d004.rs",
            "//! Seeds D004.\nuse crate::SimTime;\n\n/// Raw tick sum.\npub fn late(t: SimTime) -> u64 {\n    t.as_nanos() + 1\n}\n",
        ),
        (
            "crates/core/src/seed_d005.rs",
            "//! Seeds D005.\n\n/// Unordered reduction in a parallel-collection file.\npub fn total(vs: Vec<f64>) -> f64 {\n    let h = std::thread::spawn(move || vs.iter().copied().sum::<f64>());\n    h.join().unwrap_or(0.0)\n}\n",
        ),
        (
            "crates/core/src/seed_d006.rs",
            "//! Seeds D006.\n\npub fn undocumented() -> u64 {\n    7\n}\n",
        ),
    ];
    for (rel, text) in seeds {
        let path = root.join(rel);
        let dir = path.parent().map(Path::to_path_buf);
        if let Some(dir) = dir {
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
        }
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    }
}

#[test]
fn seeded_fixture_tree_trips_every_code() {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("lint-seeded-tree");
    if root.exists() {
        std::fs::remove_dir_all(&root).unwrap_or_else(|e| panic!("clear {}: {e}", root.display()));
    }
    write_fixture_tree(&root);

    let root_arg = root.to_string_lossy().into_owned();
    let out = run(&["lint", "--json", "--root", &root_arg]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "unsuppressed violations must exit 1:\n{text}"
    );
    assert!(text.contains("\"schema\":\"anp-lint-v1\""), "{text}");
    for code in ["D000", "D001", "D002", "D003", "D004", "D005", "D006"] {
        assert!(
            text.contains(&format!("\"{code}\":1,")),
            "summary must count exactly one {code}:\n{text}"
        );
    }
    assert!(text.contains("\"total\":7}"), "{text}");
    // Violations are sorted by file, then line: the seed files embed
    // their code in the path, so the JSON order is checkable directly.
    let order: Vec<usize> = ["seed_d003", "seed_d005", "seed_d006", "seed_d000"]
        .iter()
        .map(|name| {
            text.find(name)
                .unwrap_or_else(|| panic!("{name} missing:\n{text}"))
        })
        .collect();
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_eq!(
        order, sorted,
        "violations must be sorted by file path:\n{text}"
    );
}
