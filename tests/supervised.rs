//! End-to-end supervision of the `anp` binary: fault-injected sweeps
//! must isolate the faulted cells, print `-` holes while every sibling
//! completes, exit with the partial-result code, and — re-invoked with
//! the same `--resume` journal — complete only the missing cells and
//! produce stdout byte-identical to a clean serial run.
//!
//! Faults are injected through the binary's chaos hook (`ANP_FAULT_PANIC`
//! / `ANP_FAULT_SPIN` name sweep-cell labels), which exercises the same
//! supervised code paths a real panic or runaway simulation would. The
//! kill test crashes a live sweep mid-journal with SIGKILL, the harshest
//! interruption the journal must survive.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

const ANP: &str = env!("CARGO_BIN_EXE_anp");

/// Ladder labels from `anp sweep` (see `src/main.rs`), as journaled.
const RUNGS: [&str; 4] = [
    "rung:P1-B2.5e7-M1",
    "rung:P7-B2.5e6-M10",
    "rung:P14-B2.5e5-M1",
    "rung:P17-B2.5e4-M10",
];

fn scratch_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "anp-supervised-{}-{name}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn run(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(ANP);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("anp binary runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn faulted_parallel_sweep_isolates_cells_then_resumes_byte_identically() {
    // Ground truth: a clean serial run, no supervision flags at all.
    let baseline = run(&["--jobs", "1", "sweep", "Lulesh"], &[]);
    assert!(baseline.status.success(), "baseline sweep must pass");
    let baseline_out = stdout_of(&baseline);

    // Fault two of the four rungs inside an 8-worker sweep: one panics,
    // one burns its whole event budget (the cap is far above what any
    // healthy rung uses, so only the spinning cell trips it).
    let journal = scratch_journal("faulted");
    let jpath = journal.to_str().unwrap();
    let faulted = run(
        &[
            "--jobs",
            "8",
            "--event-budget",
            "1000000000000",
            "--resume",
            jpath,
            "sweep",
            "Lulesh",
        ],
        &[("ANP_FAULT_PANIC", RUNGS[1]), ("ANP_FAULT_SPIN", RUNGS[2])],
    );
    assert_eq!(
        faulted.status.code(),
        Some(3),
        "two holes out of four cells is a partial result:\n{}",
        stderr_of(&faulted)
    );
    let faulted_out = stdout_of(&faulted);
    let faulted_err = stderr_of(&faulted);

    // Siblings complete byte-identically despite the faults next door.
    for line in baseline_out.lines() {
        if line.starts_with("P1-") || line.starts_with("P17-") || line.starts_with("Lulesh solo") {
            assert!(
                faulted_out.contains(line),
                "healthy row {line:?} missing from faulted stdout:\n{faulted_out}"
            );
        }
    }
    // The faulted rungs render as holes, with typed detail on stderr.
    for rung in ["P7-B2.5e6-M10", "P14-B2.5e5-M1"] {
        let row = faulted_out
            .lines()
            .find(|l| l.starts_with(rung))
            .unwrap_or_else(|| panic!("no row for faulted rung {rung}:\n{faulted_out}"));
        assert!(
            !row.contains('%'),
            "faulted rung must print a hole, not data: {row:?}"
        );
    }
    assert!(
        faulted_err.contains("panicked") && faulted_err.contains(RUNGS[1]),
        "stderr must attribute the panic to its cell:\n{faulted_err}"
    );
    assert!(
        faulted_err.contains("run budget spent") && faulted_err.contains(RUNGS[2]),
        "stderr must attribute the budget trip to its cell:\n{faulted_err}"
    );
    assert!(
        faulted_err.contains("2 rung(s) did not complete"),
        "stderr must count the holes:\n{faulted_err}"
    );

    // The journal holds exactly the two healthy cells.
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(
        journal_text.matches("\"status\":\"ok\"").count(),
        2,
        "only the healthy cells journal as ok:\n{journal_text}"
    );

    // Resume with the faults lifted: only the two missing cells re-run,
    // and the finished table is byte-identical to the clean serial run.
    let resumed = run(&["--jobs", "8", "--resume", jpath, "sweep", "Lulesh"], &[]);
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "resume must complete the sweep:\n{}",
        stderr_of(&resumed)
    );
    assert_eq!(
        stdout_of(&resumed),
        baseline_out,
        "resumed stdout must be byte-identical to the clean serial run"
    );
    assert!(
        stderr_of(&resumed).contains("(resuming: 2 completed cells"),
        "resume must report the journaled cells:\n{}",
        stderr_of(&resumed)
    );
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(
        journal_text.matches("\"status\":\"ok\"").count(),
        4,
        "resume journals the two cells it completed:\n{journal_text}"
    );
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn sweep_with_every_cell_faulted_exits_with_failure() {
    let all_rungs = RUNGS.join(",");
    let out = run(
        &["--jobs", "8", "sweep", "Lulesh"],
        &[("ANP_FAULT_PANIC", all_rungs.as_str())],
    );
    assert_eq!(
        out.status.code(),
        Some(1),
        "no completed cells means exit 1:\n{}",
        stderr_of(&out)
    );
    assert!(
        stderr_of(&out).contains("4 rung(s) did not complete"),
        "stderr must count the holes:\n{}",
        stderr_of(&out)
    );
}

#[test]
fn sigkilled_sweep_resumes_to_completion() {
    let baseline = run(&["--jobs", "1", "sweep", "Lulesh"], &[]);
    assert!(baseline.status.success(), "baseline sweep must pass");

    // Start a serial sweep journaling into a fresh file, and kill it the
    // moment the first completed cell hits the journal — the process
    // dies mid-sweep with no chance to clean up.
    let journal = scratch_journal("killed");
    let jpath = journal.to_str().unwrap();
    let mut child = Command::new(ANP)
        .args(["--jobs", "1", "--resume", jpath, "sweep", "Lulesh"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("anp binary spawns");
    for _ in 0..600 {
        if let Ok(Some(_)) = child.try_wait() {
            break; // finished before we could kill it; resume still works
        }
        let journaled_ok = std::fs::read_to_string(&journal)
            .map(|t| t.contains("\"status\":\"ok\""))
            .unwrap_or(false);
        if journaled_ok {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let _ = child.kill();
    let _ = child.wait();

    let resumed = run(&["--jobs", "8", "--resume", jpath, "sweep", "Lulesh"], &[]);
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "resume after SIGKILL must complete:\n{}",
        stderr_of(&resumed)
    );
    assert_eq!(
        stdout_of(&resumed),
        stdout_of(&baseline),
        "post-kill resume must be byte-identical to the clean serial run"
    );
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn resume_journal_makes_loss_sweep_replayable() {
    let journal = scratch_journal("losses");
    let jpath = journal.to_str().unwrap();
    let first = run(&["--resume", jpath, "losses", "Lulesh"], &[]);
    assert_eq!(
        first.status.code(),
        Some(0),
        "loss sweep must complete:\n{}",
        stderr_of(&first)
    );
    // Re-invoking replays every point from the journal: identical table,
    // all four points resumed rather than re-simulated.
    let replay = run(&["--resume", jpath, "losses", "Lulesh"], &[]);
    assert_eq!(replay.status.code(), Some(0));
    assert_eq!(
        stdout_of(&replay),
        stdout_of(&first),
        "replayed loss table must be byte-identical"
    );
    assert!(
        stderr_of(&replay).contains("(resuming: 4 completed cells"),
        "replay must decode all four journaled points:\n{}",
        stderr_of(&replay)
    );
    let _ = std::fs::remove_file(&journal);
}
