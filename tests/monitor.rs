//! End-to-end tests of `anp monitor` and the CLI's flag diagnostics:
//! the monitor study's stdout must be byte-identical for any `--jobs`
//! setting and deterministic per seed, a bad flag value must name the
//! flag and the offending value on stderr before the usage text, and
//! `anp apps` must carry the communication-skeleton column.

use std::process::{Command, Output};

const ANP: &str = env!("CARGO_BIN_EXE_anp");

fn run(args: &[&str]) -> Output {
    Command::new(ANP)
        .args(args)
        .output()
        .expect("anp binary runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn monitor_stdout_is_byte_identical_for_any_worker_count() {
    let serial = run(&["--seed", "42", "--jobs", "1", "monitor", "--quick"]);
    assert_eq!(
        serial.status.code(),
        Some(0),
        "serial monitor must pass its gates:\n{}",
        stderr_of(&serial)
    );
    let parallel = run(&["--seed", "42", "--jobs", "8", "monitor", "--quick"]);
    assert_eq!(
        parallel.status.code(),
        Some(0),
        "parallel monitor must pass its gates:\n{}",
        stderr_of(&parallel)
    );
    let serial_out = stdout_of(&serial);
    assert_eq!(
        serial_out,
        stdout_of(&parallel),
        "monitor stdout must not depend on the worker count"
    );
    // The report carries all three tables.
    for needle in ["rung", "arrival-lag", "departure-lag", "overhead"] {
        assert!(
            serial_out.contains(needle),
            "report must mention {needle:?}:\n{serial_out}"
        );
    }
}

#[test]
fn monitor_is_deterministic_per_seed_and_sensitive_to_it() {
    let a = run(&["--seed", "7", "--jobs", "2", "monitor", "--quick"]);
    let b = run(&["--seed", "7", "--jobs", "2", "monitor", "--quick"]);
    assert_eq!(
        stdout_of(&a),
        stdout_of(&b),
        "same seed must reproduce the same report"
    );
    let c = run(&["--seed", "8", "--jobs", "2", "monitor", "--quick"]);
    assert_ne!(
        stdout_of(&a),
        stdout_of(&c),
        "a different seed must perturb the report"
    );
}

#[test]
fn bad_flag_values_are_named_on_stderr() {
    let out = run(&["--seed", "foo", "probe"]);
    assert_eq!(out.status.code(), Some(2), "bad value is a usage error");
    let err = stderr_of(&out);
    assert!(
        err.contains("invalid value for --seed: \"foo\""),
        "stderr must name the flag and the value:\n{err}"
    );

    let out = run(&["--jobs", "many", "probe"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("invalid value for --jobs: \"many\""),
        "stderr must name the flag and the value:\n{}",
        stderr_of(&out)
    );

    let out = run(&["--seed"]);
    assert_eq!(out.status.code(), Some(2), "missing value is a usage error");
    assert!(
        stderr_of(&out).contains("missing value for --seed"),
        "stderr must name the flag missing its value:\n{}",
        stderr_of(&out)
    );
}

#[test]
fn apps_listing_carries_communication_skeletons() {
    let out = run(&["apps"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout_of(&out);
    for app in ["FFTW", "Lulesh", "MCB", "MILC", "VPFFT", "AMG"] {
        assert!(text.contains(app), "apps must list {app}:\n{text}");
    }
    // Every row ends in a one-line communication skeleton.
    for needle in ["all-to-all", "stencil"] {
        assert!(
            text.contains(needle),
            "apps must describe skeletons ({needle}):\n{text}"
        );
    }
}
