//! Paper-scale smoke tests: every application proxy and both
//! micro-benchmarks at their real rank counts on the Cab fabric.
//!
//! Iteration counts are cut down so the whole file stays fast in debug
//! builds; the point is that 144-rank collectives, 64-rank stencils and
//! ring benchmarks all complete, stay deadlock-free, and conserve
//! messages at scale.

use active_netprobe::simmpi::World;
use active_netprobe::simnet::{SimTime, SwitchConfig};
use active_netprobe::workloads::apps::amg::{build_amg, AmgParams};
use active_netprobe::workloads::apps::fftw::{build_fftw, FftwParams};
use active_netprobe::workloads::apps::lulesh::{build_lulesh, LuleshParams};
use active_netprobe::workloads::apps::mcb::{build_mcb, McbParams};
use active_netprobe::workloads::apps::milc::{build_milc, MilcParams};
use active_netprobe::workloads::apps::vpfft::{build_vpfft, VpfftParams};
use active_netprobe::workloads::{
    build_compressionb, build_impactb, AppKind, CompressionConfig, ImpactConfig, Layout, RunMode,
};

fn world() -> World {
    World::new(SwitchConfig::cab().with_seed(99))
}

#[test]
fn fftw_at_paper_scale() {
    let mut w = world();
    let members = build_fftw(
        &FftwParams {
            iterations: 2,
            ..FftwParams::default()
        },
        &Layout::cab_standard(),
        RunMode::Iterations(2),
        1,
    );
    assert_eq!(members.len(), 144);
    let job = w.add_job("fftw", members);
    assert!(w
        .run_until_job_done(job, SimTime::from_secs(30))
        .completed());
    // Every alltoall moves 144×143 messages; two per iteration.
    assert_eq!(w.fabric().stats().messages_sent, 144 * 143 * 2 * 2);
    assert_eq!(
        w.fabric().stats().messages_sent,
        w.fabric().stats().messages_delivered
    );
}

#[test]
fn vpfft_at_paper_scale() {
    let mut w = world();
    let members = build_vpfft(
        &VpfftParams {
            iterations: 2,
            ..VpfftParams::default()
        },
        &Layout::cab_standard(),
        RunMode::Iterations(2),
        2,
    );
    let job = w.add_job("vpfft", members);
    assert!(w
        .run_until_job_done(job, SimTime::from_secs(30))
        .completed());
}

#[test]
fn lulesh_at_paper_scale() {
    let mut w = world();
    let members = build_lulesh(
        &LuleshParams {
            iterations: 3,
            ..LuleshParams::default()
        },
        &Layout::cab_lulesh(),
        RunMode::Iterations(3),
        3,
    );
    assert_eq!(members.len(), 64);
    let job = w.add_job("lulesh", members);
    assert!(w
        .run_until_job_done(job, SimTime::from_secs(30))
        .completed());
    // 26 halo messages per rank per step, plus allreduce lowering.
    assert!(w.fabric().stats().messages_sent >= 64 * 26 * 3);
}

#[test]
fn milc_at_paper_scale() {
    let mut w = world();
    let members = build_milc(
        &MilcParams {
            iterations: 5,
            ..MilcParams::default()
        },
        &Layout::cab_standard(),
        RunMode::Iterations(5),
        4,
    );
    let job = w.add_job("milc", members);
    assert!(w
        .run_until_job_done(job, SimTime::from_secs(30))
        .completed());
}

#[test]
fn mcb_and_amg_at_paper_scale() {
    let mut w = world();
    let mcb = build_mcb(
        &McbParams {
            iterations: 3,
            compute_ns: 500_000,
            ..McbParams::default()
        },
        &Layout::cab_standard(),
        RunMode::Iterations(3),
        5,
    );
    let amg = build_amg(
        &AmgParams {
            iterations: 2,
            ..AmgParams::default()
        },
        &Layout::cab_standard(),
        RunMode::Iterations(2),
        6,
    );
    let j1 = w.add_job("mcb", mcb);
    let j2 = w.add_job("amg", amg);
    assert!(w.run_until_job_done(j1, SimTime::from_secs(60)).completed());
    assert!(w.run_until_job_done(j2, SimTime::from_secs(60)).completed());
}

#[test]
fn probes_and_compression_share_the_switch_with_an_app() {
    // The paper's full co-location: application + ImpactB + CompressionB
    // all on the same 18 nodes, none starving.
    let mut w = world();
    let (probes, sink) = build_impactb(&ImpactConfig::default(), 18);
    w.add_job("impactb", probes);
    let comp = CompressionConfig::new(7, 2_500_000, 1);
    w.add_job(
        "compressionb",
        build_compressionb(&comp, 18, 2, 2_600_000_000),
    );
    let app = build_milc(
        &MilcParams {
            iterations: 10,
            ..MilcParams::default()
        },
        &Layout::cab_standard(),
        RunMode::Iterations(10),
        7,
    );
    let job = w.add_job("milc", app);
    assert!(w
        .run_until_job_done(job, SimTime::from_secs(30))
        .completed());
    assert!(
        !sink.borrow().is_empty(),
        "probes must keep sampling under full co-location"
    );
}

#[test]
fn registry_default_builds_run_one_iteration_each() {
    for kind in AppKind::ALL {
        let mut w = World::new(SwitchConfig::cab().with_seed(kind as u64));
        let job = w.add_job(kind.name(), kind.build(RunMode::Iterations(1), 8));
        assert!(
            w.run_until_job_done(job, SimTime::from_secs(30))
                .completed(),
            "{} did not finish one iteration",
            kind.name()
        );
        assert!(w.fabric().stats().messages_sent > 0, "{}", kind.name());
    }
}
