//! Parallel-vs-serial equivalence: the sweep engine's core guarantee.
//!
//! Every sweep collects results by index, and every cell is an
//! independent, self-seeded simulation — so running the look-up table,
//! the app profiles, the pairing grid, or a loss sweep on `jobs = 1`
//! versus `jobs ≥ 4` must produce *bit-identical* numbers, not merely
//! statistically similar ones. These tests pin that guarantee with exact
//! `f64::to_bits` / integer comparisons on a small deterministic fabric.

use anp_core::{
    calibrate, loss_sweep, sweep_recorded, ExperimentConfig, LatencyProfile, LookupTable, MuPolicy,
    Parallelism, Study,
};
use anp_simmpi::ReliabilityConfig;
use anp_simnet::{SimDuration, SwitchConfig};
use anp_workloads::{AppKind, CompressionConfig, ImpactConfig};

/// A small experiment config on the deterministic tiny switch, sized so
/// the whole grid finishes in seconds.
fn tiny_cfg(jobs: usize) -> ExperimentConfig {
    let mut switch = SwitchConfig::tiny_deterministic();
    switch.nodes = 18;
    switch.route_servers = 18;
    ExperimentConfig {
        switch,
        impact: ImpactConfig {
            period: SimDuration::from_micros(100),
            pairs_per_node: 1,
            ..ImpactConfig::default()
        },
        measure_window: SimDuration::from_millis(5),
        warmup_frac: 0.1,
        run_cap: SimDuration::from_secs(60),
        seed: 7,
        jobs: Parallelism::fixed(jobs),
        audit: false,
    }
}

fn assert_profiles_identical(a: &LatencyProfile, b: &LatencyProfile, what: &str) {
    assert_eq!(a.count(), b.count(), "{what}: sample counts differ");
    assert_eq!(
        a.mean().to_bits(),
        b.mean().to_bits(),
        "{what}: means differ"
    );
    assert_eq!(
        a.std_dev().to_bits(),
        b.std_dev().to_bits(),
        "{what}: std devs differ"
    );
    assert_eq!(a.min().to_bits(), b.min().to_bits(), "{what}: mins differ");
    assert_eq!(a.max().to_bits(), b.max().to_bits(), "{what}: maxes differ");
}

#[test]
fn lookup_table_is_bit_identical_across_worker_counts() {
    let apps = [AppKind::Fftw, AppKind::Lulesh];
    let configs = [
        CompressionConfig::new(1, 25_000_000, 1),
        CompressionConfig::new(7, 2_500_000, 10),
        CompressionConfig::new(17, 25_000, 10),
    ];

    let serial_cfg = tiny_cfg(1);
    let parallel_cfg = tiny_cfg(4);
    let calib_serial = calibrate(&serial_cfg, MuPolicy::MinLatency).unwrap();
    let calib_parallel = calibrate(&parallel_cfg, MuPolicy::MinLatency).unwrap();
    assert_eq!(
        calib_serial.mu.to_bits(),
        calib_parallel.mu.to_bits(),
        "calibration must not depend on jobs"
    );

    let mut serial_lines = Vec::new();
    let serial = LookupTable::measure(&serial_cfg, calib_serial, &apps, &configs, |l| {
        serial_lines.push(l.to_owned())
    })
    .unwrap();
    let mut parallel_lines = Vec::new();
    let parallel = LookupTable::measure(&parallel_cfg, calib_parallel, &apps, &configs, |l| {
        parallel_lines.push(l.to_owned())
    })
    .unwrap();

    // Even the progress lines must match, text and order.
    assert_eq!(serial_lines, parallel_lines);

    assert_eq!(serial.entries.len(), parallel.entries.len());
    for (s, p) in serial.entries.iter().zip(&parallel.entries) {
        assert_eq!(s.config, p.config);
        assert_eq!(
            s.utilization.to_bits(),
            p.utilization.to_bits(),
            "utilization of {} differs",
            s.config.label()
        );
        assert_profiles_identical(&s.profile, &p.profile, &s.config.label());
        assert_eq!(s.slowdown.len(), p.slowdown.len());
        for (app, d) in &s.slowdown {
            assert_eq!(
                d.to_bits(),
                p.slowdown[app].to_bits(),
                "slowdown of {} under {} differs",
                app.name(),
                s.config.label()
            );
        }
    }
    assert_eq!(serial.solo, parallel.solo, "solo runtimes differ");
}

#[test]
fn app_profiles_and_pairings_are_bit_identical() {
    let apps = [AppKind::Lulesh, AppKind::Mcb];
    let configs = [CompressionConfig::new(7, 2_500_000, 10)];

    let run = |jobs: usize| {
        let cfg = tiny_cfg(jobs);
        let calib = calibrate(&cfg, MuPolicy::MinLatency).unwrap();
        let table = LookupTable::measure(&cfg, calib, &apps, &configs, |_| {}).unwrap();
        let study = Study::measure_profiles(&cfg, table, &apps, |_| {}).unwrap();
        let mut outcomes = study.predict_all(&apps, &anp_core::all_models());
        study
            .measure_pairs_recorded(&cfg, &mut outcomes, |_| {})
            .unwrap();
        (study, outcomes)
    };
    let (study_serial, outcomes_serial) = run(1);
    let (study_parallel, outcomes_parallel) = run(4);

    for app in apps {
        assert_profiles_identical(
            &study_serial.app_profiles[&app],
            &study_parallel.app_profiles[&app],
            app.name(),
        );
    }
    assert_eq!(outcomes_serial.len(), outcomes_parallel.len());
    for (s, p) in outcomes_serial.iter().zip(&outcomes_parallel) {
        assert_eq!((s.victim, s.other), (p.victim, p.other));
        assert_eq!(
            s.measured.unwrap().to_bits(),
            p.measured.unwrap().to_bits(),
            "measured slowdown of {}+{} differs",
            s.victim.name(),
            s.other.name()
        );
        assert_eq!(s.predicted, p.predicted);
    }
}

#[test]
fn loss_sweep_is_bit_identical_across_worker_counts() {
    let rel = ReliabilityConfig {
        retransmit_timeout: SimDuration::from_millis(50),
        max_retries: 10,
    };
    let losses = [0.0, 1e-4, 1e-3];
    let serial = loss_sweep(&tiny_cfg(1), AppKind::Lulesh, &losses, rel);
    let parallel = loss_sweep(&tiny_cfg(6), AppKind::Lulesh, &losses, rel);
    assert_eq!(serial.len(), parallel.len());
    for ((ls, rs), (lp, rp)) in serial.iter().zip(&parallel) {
        assert_eq!(ls.to_bits(), lp.to_bits());
        assert_eq!(rs, rp, "loss point {ls} differs");
    }
}

#[test]
fn telemetry_reflects_the_grid_shape() {
    let cfg = tiny_cfg(4);
    let calib = calibrate(&cfg, MuPolicy::MinLatency).unwrap();
    let apps = [AppKind::Lulesh];
    let configs = [
        CompressionConfig::new(1, 25_000_000, 1),
        CompressionConfig::new(17, 25_000, 10),
    ];
    let (_, t) = LookupTable::measure_recorded(&cfg, calib, &apps, &configs, |_| {}).unwrap();
    // apps + configs + apps×configs cells.
    assert_eq!(t.runs.len(), 1 + 2 + 2);
    assert_eq!(t.name, "lookup-table");
    assert!(t.workers >= 1);
    assert!(
        t.events_total() > 0,
        "experiment drivers must report simulation events"
    );
    assert!(t.runs.iter().all(|r| r.events > 0));
    assert!(t.runs[0].label.starts_with("solo:"));
    assert!(t.to_json().contains("\"lookup-table\""));
}

#[test]
fn explicit_sweep_of_experiment_closures_keeps_order() {
    // The raw engine, exercised the way harnesses use it: heterogeneous
    // per-cell wall times, results must still land by index.
    let cfg = tiny_cfg(8);
    let apps = [AppKind::Lulesh, AppKind::Mcb, AppKind::Fftw];
    let tasks: Vec<(String, _)> = apps
        .iter()
        .map(|&app| {
            let cfg = &cfg;
            (format!("solo:{}", app.name()), move || {
                anp_core::solo_runtime(cfg, app).unwrap()
            })
        })
        .collect();
    let (parallel, _) = sweep_recorded("solos", Parallelism::fixed(8), tasks);
    for (i, &app) in apps.iter().enumerate() {
        let serial = anp_core::solo_runtime(&tiny_cfg(1), app).unwrap();
        assert_eq!(parallel[i], serial, "{} solo runtime differs", app.name());
    }
}
