//! Backend-dispatch equivalence: routing a measurement through the
//! object-safe [`Backend`] trait must not change a single bit of it.
//!
//! [`DesBackend`] documents that it delegates *verbatim* to the free
//! functions in `anp_core::experiments`; these tests pin that promise on
//! a small deterministic fabric, for both a serial and a parallel worker
//! pool (the trait seam must not perturb the sweep engine's
//! by-index result collection either).

use anp_core::{
    idle_profile, impact_profile_of_compression, runtime_under_compression, solo_runtime, Backend,
    DesBackend, ExperimentConfig, LatencyProfile, Parallelism, WorkloadSpec,
};
use anp_simnet::{SimDuration, SwitchConfig};
use anp_workloads::{AppKind, CompressionConfig, ImpactConfig};

/// A small experiment config on the deterministic tiny switch, sized so
/// every cell finishes in well under a second.
fn tiny_cfg(jobs: usize) -> ExperimentConfig {
    let mut switch = SwitchConfig::tiny_deterministic();
    switch.nodes = 18;
    switch.route_servers = 18;
    ExperimentConfig {
        switch,
        impact: ImpactConfig {
            period: SimDuration::from_micros(100),
            pairs_per_node: 1,
            ..ImpactConfig::default()
        },
        measure_window: SimDuration::from_millis(5),
        warmup_frac: 0.1,
        run_cap: SimDuration::from_secs(60),
        seed: 7,
        jobs: Parallelism::fixed(jobs),
        audit: false,
    }
}

fn assert_profiles_identical(a: &LatencyProfile, b: &LatencyProfile, what: &str) {
    assert_eq!(a.count(), b.count(), "{what}: sample counts differ");
    assert_eq!(
        a.mean().to_bits(),
        b.mean().to_bits(),
        "{what}: means differ"
    );
    assert_eq!(
        a.std_dev().to_bits(),
        b.std_dev().to_bits(),
        "{what}: std devs differ"
    );
    assert_eq!(a.min().to_bits(), b.min().to_bits(), "{what}: mins differ");
    assert_eq!(a.max().to_bits(), b.max().to_bits(), "{what}: maxes differ");
}

#[test]
fn des_backend_is_bit_identical_to_the_free_functions() {
    let comp = CompressionConfig::new(2, 1_000_000, 2);
    for jobs in [1usize, 4] {
        let cfg = tiny_cfg(jobs);
        let backend = DesBackend;

        let idle_direct = idle_profile(&cfg).unwrap();
        let idle_traited = backend
            .measure_impact_profile(&cfg, WorkloadSpec::Idle)
            .unwrap();
        assert_profiles_identical(&idle_direct, &idle_traited, &format!("idle, jobs={jobs}"));

        let imp_direct = impact_profile_of_compression(&cfg, &comp).unwrap();
        let imp_traited = backend
            .measure_impact_profile(&cfg, WorkloadSpec::Compression(&comp))
            .unwrap();
        assert_profiles_identical(&imp_direct, &imp_traited, &format!("impact, jobs={jobs}"));

        let app = AppKind::Fftw;
        assert_eq!(
            solo_runtime(&cfg, app).unwrap(),
            backend.measure_solo_runtime(&cfg, app).unwrap(),
            "solo runtime, jobs={jobs}"
        );
        assert_eq!(
            runtime_under_compression(&cfg, app, &comp).unwrap(),
            backend.measure_compression_run(&cfg, app, &comp).unwrap(),
            "compression runtime, jobs={jobs}"
        );
    }
}
