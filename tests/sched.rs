//! End-to-end tests of `anp sched`: the scheduling study's stdout must
//! be byte-identical for any `--jobs` setting (the schedule table and
//! regret summary are simulation results, not wall-clock artifacts), and
//! a fault injected into one ground-truth cell must skip scheduling and
//! exit with the partial-result code instead of printing a regret table
//! biased by the hole.

use std::process::{Command, Output};

const ANP: &str = env!("CARGO_BIN_EXE_anp");

fn run(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(ANP);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("anp binary runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn sched_stdout_is_byte_identical_for_any_worker_count() {
    let serial = run(&["--seed", "42", "--jobs", "1", "sched", "--quick"], &[]);
    assert_eq!(
        serial.status.code(),
        Some(0),
        "serial sched must complete:\n{}",
        stderr_of(&serial)
    );
    let parallel = run(&["--seed", "42", "--jobs", "8", "sched", "--quick"], &[]);
    assert_eq!(
        parallel.status.code(),
        Some(0),
        "parallel sched must complete:\n{}",
        stderr_of(&parallel)
    );
    let serial_out = stdout_of(&serial);
    assert_eq!(
        serial_out,
        stdout_of(&parallel),
        "sched stdout must not depend on the worker count"
    );
    // The report carries the policy roster and the regret anchor.
    for needle in [
        "predictive:Queue:des",
        "first-fit",
        "random",
        "solo-only",
        "oracle",
        "regret%",
    ] {
        assert!(
            serial_out.contains(needle),
            "summary must mention {needle:?}:\n{serial_out}"
        );
    }
}

#[test]
fn faulted_truth_cell_skips_scheduling_and_exits_partial() {
    // FFTW and Lulesh are both in the quick app set, so exactly this
    // directed co-run cell of the pairing grid panics; every sibling
    // completes and the campaign lands partial (exit 3), with the hole
    // attributed on stderr and no regret table on stdout.
    let out = run(
        &["--jobs", "8", "sched", "--quick"],
        &[("ANP_FAULT_PANIC", "corun:FFTW+Lulesh")],
    );
    assert_eq!(
        out.status.code(),
        Some(3),
        "one hole in the truth is a partial result:\n{}",
        stderr_of(&out)
    );
    let err = stderr_of(&out);
    assert!(
        err.contains("corun:FFTW+Lulesh"),
        "stderr must attribute the hole to its cell:\n{err}"
    );
    assert!(
        err.contains("truth incomplete"),
        "stderr must say scheduling was skipped:\n{err}"
    );
    assert!(
        !stdout_of(&out).contains("regret%"),
        "no regret table may print off a holed truth:\n{}",
        stdout_of(&out)
    );
}

#[test]
fn sched_rejects_unknown_model_names() {
    let out = run(&["sched", "--quick", "--model", "Bogus"], &[]);
    assert_eq!(out.status.code(), Some(2), "bad model is a usage error");
    assert!(
        stderr_of(&out).contains("unknown model 'Bogus'"),
        "stderr must name the bad model:\n{}",
        stderr_of(&out)
    );
}
