//! Integration tests of the measurement methodology: probes, the
//! Pollaczek–Khinchine inversion, and the relationship between inferred
//! and true switch utilization. These cross `anp-simnet`, `anp-simmpi`,
//! `anp-workloads` and `anp-core`.

use active_netprobe::core::{Calibration, LatencyProfile, MuPolicy, TimedSeries};
use active_netprobe::simmpi::{Looping, Op, Program, Src, World};
use active_netprobe::simnet::{NodeId, SimDuration, SimTime, SwitchConfig};
use active_netprobe::workloads::{build_impactb, ImpactConfig};

/// Probes the Cab fabric under a synthetic ring load; returns the probe
/// profile and the true routing-stage utilization.
fn probe_under_ring_load(bytes: u64, gap: SimDuration, seed: u64) -> (LatencyProfile, f64) {
    let mut world = World::new(SwitchConfig::cab().with_seed(seed));
    let cfg = ImpactConfig {
        period: SimDuration::from_micros(500),
        ..ImpactConfig::default()
    };
    let (probes, sink) = build_impactb(&cfg, 18);
    world.add_job("impactb", probes);
    if bytes > 0 {
        let noisy: Vec<(Box<dyn Program>, NodeId)> = (0..18u32)
            .map(|n| {
                (
                    Box::new(Looping::new(vec![
                        Op::Isend {
                            dst: (n + 1) % 18,
                            bytes,
                            tag: 1,
                        },
                        Op::Irecv {
                            src: Src::Any,
                            tag: 1,
                        },
                        Op::WaitAll,
                        Op::Sleep(gap),
                    ])) as Box<dyn Program>,
                    NodeId(n),
                )
            })
            .collect();
        world.add_job("load", noisy);
    }
    world.run_until(SimTime::from_millis(60));
    let samples = sink.borrow();
    let profile = TimedSeries::with_warmup(samples.clone(), 0.1).profile();
    let true_util = world.fabric().switch_stats().utilization(world.now());
    (profile, true_util)
}

#[test]
fn idle_probe_latency_matches_cab_target() {
    // The paper reports ~1.25 µs idle packet latency on Cab's switches.
    let (idle, true_util) = probe_under_ring_load(0, SimDuration::ZERO, 7);
    assert!(
        (1.1..1.5).contains(&idle.mean()),
        "idle mean {} outside the calibrated Cab window",
        idle.mean()
    );
    assert!(true_util < 0.05, "probes alone must barely load the switch");
    // The idle distribution has the Fig. 3 shape: a dominant mode with a
    // small far tail.
    let h = idle.histogram();
    let mode_bin = (0..h.bins()).max_by_key(|&i| h.count(i)).unwrap();
    assert!((h.bin_center(mode_bin) - 1.25).abs() < 0.5);
    assert!(idle.max() > 2.5, "the rare slow packets must exist");
}

#[test]
fn inferred_utilization_is_monotone_in_true_load() {
    let ladder: [(u64, u64); 4] = [
        (0, 0),
        (64 << 10, 1_000_000),
        (256 << 10, 300_000),
        (1 << 20, 20_000),
    ];
    let (idle, _) = probe_under_ring_load(0, SimDuration::ZERO, 3);
    let calib = Calibration::from_idle_profile(&idle, MuPolicy::MinLatency).unwrap();
    let mut last_inferred = -1.0;
    let mut last_true = -1.0;
    for (bytes, gap) in ladder {
        let (p, true_util) = probe_under_ring_load(bytes, SimDuration::from_nanos(gap), 3);
        let inferred = calib.utilization(&p);
        assert!(
            inferred >= last_inferred - 0.02,
            "inferred utilization regressed: {inferred} after {last_inferred}"
        );
        assert!(
            true_util >= last_true - 0.02,
            "true utilization regressed: {true_util} after {last_true}"
        );
        last_inferred = inferred;
        last_true = true_true_guard(true_util);
    }
    assert!(
        last_inferred > 0.5,
        "heavy load must read as substantial utilization, got {last_inferred}"
    );
}

fn true_true_guard(u: f64) -> f64 {
    assert!((0.0..=1.0).contains(&u), "true utilization out of range");
    u
}

#[test]
fn pk_inversion_consistent_with_forward_model() {
    // Independent of any simulation: calibrations over a grid of (µ, Var)
    // must invert their own forward model exactly.
    for mu in [0.3, 0.8, 1.5] {
        for var in [0.0, 0.2, 2.0] {
            let calib = Calibration {
                mu,
                var_s: var,
                idle_mean: 1.0 / mu,
                policy: MuPolicy::MinLatency,
            };
            for frac in [0.1, 0.5, 0.9] {
                let lambda = mu * frac;
                let w = calib.pk_sojourn(lambda);
                let rho = calib.utilization_from_sojourn(w);
                assert!(
                    (rho - frac).abs() < 1e-6,
                    "mu={mu} var={var} frac={frac}: got rho={rho}"
                );
            }
        }
    }
}

#[test]
fn probe_footprint_is_stable_across_probe_rate() {
    // Impact probes must be light enough that doubling their rate barely
    // changes what they measure (the paper's "do not impact applications"
    // requirement).
    let run = |period_us: u64| {
        let mut world = World::new(SwitchConfig::cab().with_seed(11));
        let cfg = ImpactConfig {
            period: SimDuration::from_micros(period_us),
            ..ImpactConfig::default()
        };
        let (probes, sink) = build_impactb(&cfg, 18);
        world.add_job("impactb", probes);
        world.run_until(SimTime::from_millis(40));
        let s = sink.borrow();
        TimedSeries::with_warmup(s.clone(), 0.1).profile().mean()
    };
    let slow = run(2_000);
    let fast = run(500);
    assert!(
        (slow - fast).abs() / slow < 0.08,
        "probe self-interference too high: {slow} vs {fast}"
    );
}
