//! Probing a two-level fat tree — the topology Cab actually has.
//!
//! The paper confines its experiments to single leaf switches and notes
//! the methodology "can be deployed in any kind of HPC infrastructure".
//! This example runs the probe idea on the extension topology
//! (`SwitchConfig::cab_fat_tree`): ping-pong probes measure intra-leaf and
//! cross-leaf latency while spine-crossing background traffic runs.
//!
//! The punchline: intra-leaf probes are blind to spine contention —
//! cross-leaf probes light up instead. On a multi-level network the
//! paper's per-switch measurement has to be repeated per level, exactly as
//! its single-switch framing implies.
//!
//! ```text
//! cargo run --release --example fat_tree_probe
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use active_netprobe::simmpi::{Ctx, Looping, Op, Program, Src, World};
use active_netprobe::simnet::{NodeId, SimDuration, SimTime, SwitchConfig};

/// A ping-pong pair between two job-local ranks; records one-way µs.
struct Ping {
    partner: u32,
    sink: Rc<RefCell<Vec<f64>>>,
    t0: SimTime,
    step: u8,
}

impl Program for Ping {
    fn next_op(&mut self, ctx: &Ctx) -> Op {
        match self.step {
            0 => {
                self.t0 = ctx.now;
                self.step = 1;
                Op::Isend {
                    dst: self.partner,
                    bytes: 1024,
                    tag: 0,
                }
            }
            1 => {
                self.step = 2;
                Op::Irecv {
                    src: Src::Rank(self.partner),
                    tag: 0,
                }
            }
            2 => {
                self.step = 3;
                Op::WaitAll
            }
            _ => {
                let rtt = ctx.now.since(self.t0);
                self.sink.borrow_mut().push(rtt.as_micros_f64() / 2.0);
                self.step = 0;
                Op::Sleep(SimDuration::from_micros(500))
            }
        }
    }
}

fn pong(partner: u32) -> Looping {
    Looping::new(vec![
        Op::Irecv {
            src: Src::Rank(partner),
            tag: 0,
        },
        Op::WaitAll,
        Op::Isend {
            dst: partner,
            bytes: 1024,
            tag: 0,
        },
        Op::WaitAll,
    ])
}

/// Runs intra-leaf and cross-leaf probe pairs over a 2-leaf fat tree,
/// optionally with heavy cross-leaf background traffic.
fn measure(background: bool) -> (f64, f64) {
    // 2 leaves × 18 nodes, 2 spines, Cab-like parameters per switch.
    let mut world = World::new(SwitchConfig::cab_fat_tree(2, 2));
    let intra = Rc::new(RefCell::new(Vec::new()));
    let cross = Rc::new(RefCell::new(Vec::new()));

    // Intra-leaf pair: nodes 0 and 1 (both on leaf 0).
    world.add_job(
        "intra-probe",
        vec![
            (
                Box::new(Ping {
                    partner: 1,
                    sink: Rc::clone(&intra),
                    t0: SimTime::ZERO,
                    step: 0,
                }) as Box<dyn Program>,
                NodeId(0),
            ),
            (Box::new(pong(0)) as Box<dyn Program>, NodeId(1)),
        ],
    );
    // Cross-leaf pair: node 2 (leaf 0) with node 20 (leaf 1).
    world.add_job(
        "cross-probe",
        vec![
            (
                Box::new(Ping {
                    partner: 1,
                    sink: Rc::clone(&cross),
                    t0: SimTime::ZERO,
                    step: 0,
                }) as Box<dyn Program>,
                NodeId(2),
            ),
            (Box::new(pong(0)) as Box<dyn Program>, NodeId(20)),
        ],
    );

    if background {
        // Heavy leaf-0 → leaf-1 streams from every remaining node pair:
        // they saturate the up-links and spines but leave each leaf's
        // node-to-node path comparatively calm.
        // Flood job-local ranks 0..14 live on leaf-0 nodes 4..18; ranks
        // 14..28 on leaf-1 nodes 22..36. Each pair (r, r+14) streams
        // 256 KB messages both ways across the spines.
        let members: Vec<(Box<dyn Program>, NodeId)> = (0..14u32)
            .map(|r| {
                (
                    Box::new(Looping::new(vec![
                        Op::Isend {
                            dst: r + 14,
                            bytes: 256 * 1024,
                            tag: 1,
                        },
                        Op::Irecv {
                            src: Src::Rank(r + 14),
                            tag: 1,
                        },
                        Op::WaitAll,
                    ])) as Box<dyn Program>,
                    NodeId(4 + r),
                )
            })
            .chain((0..14u32).map(|r| {
                (
                    Box::new(Looping::new(vec![
                        Op::Irecv {
                            src: Src::Rank(r),
                            tag: 1,
                        },
                        Op::Isend {
                            dst: r,
                            bytes: 256 * 1024,
                            tag: 1,
                        },
                        Op::WaitAll,
                    ])) as Box<dyn Program>,
                    NodeId(22 + r),
                )
            }))
            .collect();
        world.add_job("cross-leaf-flood", members);
    }

    world.run_until(SimTime::from_millis(40));
    let mean = |v: &Rc<RefCell<Vec<f64>>>| {
        let v = v.borrow();
        let skip = v.len() / 10;
        let s = &v[skip..];
        s.iter().sum::<f64>() / s.len() as f64
    };
    (mean(&intra), mean(&cross))
}

fn main() {
    println!("Probing a 2-leaf / 2-spine Cab-like fat tree\n");
    let (intra_idle, cross_idle) = measure(false);
    println!("idle:            intra-leaf {intra_idle:.2}us   cross-leaf {cross_idle:.2}us");
    let (intra_busy, cross_busy) = measure(true);
    println!("spine flooded:   intra-leaf {intra_busy:.2}us   cross-leaf {cross_busy:.2}us");
    println!();
    println!(
        "intra-leaf inflation {:.1}x vs cross-leaf inflation {:.1}x",
        intra_busy / intra_idle,
        cross_busy / cross_idle
    );
    println!();
    println!(
        "Cross-leaf probes see the extra hops ({:.2}us idle vs {:.2}us)",
        cross_idle, intra_idle
    );
    println!("and they alone expose spine contention: a single-leaf probe set,");
    println!("as used in the paper, must be replicated per switch level to");
    println!("cover a multi-level fabric.");
}
