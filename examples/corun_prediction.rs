//! Co-run prediction: the paper's headline use-case end to end.
//!
//! Predict how two applications will degrade each other *before ever
//! running them together*, using only measurements taken on each in
//! isolation (§V) — then verify against a real co-run.
//!
//! This uses a reduced CompressionB sweep so it finishes in about a
//! minute; the `fig8_prediction_errors` harness runs the full study.
//!
//! ```text
//! cargo run --release --example corun_prediction
//! ```

use active_netprobe::core::{
    all_models, calibrate, ExperimentConfig, LookupTable, MuPolicy, Study,
};
use active_netprobe::workloads::{AppKind, CompressionConfig};

fn main() {
    let cfg = ExperimentConfig::cab();
    let apps = [AppKind::Fftw, AppKind::Milc];

    // Isolated measurements: idle calibration, a small compression table,
    // and each application's impact profile. Cost grows linearly with the
    // number of applications — the quadratic pairing space comes free.
    println!("[1/3] measuring look-up table (linear in apps and configs)...");
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");
    let sweep: Vec<CompressionConfig> = CompressionConfig::paper_sweep()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 5 == (i / 5) % 5)
        .map(|(_, c)| c)
        .collect();
    let table =
        LookupTable::measure(&cfg, calib, &apps, &sweep, |_| {}).expect("table measurement");
    println!(
        "      table covers {:.0}%..{:.0}% switch utilization",
        table.utilization_range().0 * 100.0,
        table.utilization_range().1 * 100.0
    );

    println!("[2/3] measuring each app's impact profile...");
    let study = Study::measure_profiles(&cfg, table, &apps, |_| {}).expect("profiles");

    // Predict both directions of the pairing with all four models.
    println!("[3/3] predicting FFTW <-> MILC, then verifying with a co-run...\n");
    let models = all_models();
    for (victim, other) in [
        (AppKind::Fftw, AppKind::Milc),
        (AppKind::Milc, AppKind::Fftw),
    ] {
        let mut outcome = study.predict_pair(victim, other, &models);
        study
            .measure_pair(&cfg, &mut outcome)
            .expect("co-run ground truth");
        println!(
            "{} co-run with {}: measured {:+.1}%",
            victim.name(),
            other.name(),
            outcome.measured.unwrap()
        );
        for (&model, prediction) in &outcome.predicted {
            println!(
                "    {:<15} predicts {:+6.1}%  (|err| {:.1})",
                model.name(),
                prediction,
                outcome.abs_error(model).unwrap()
            );
        }
        println!();
    }
}
