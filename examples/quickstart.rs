//! Quickstart: measure how much of a switch an application consumes.
//!
//! Builds the simulated Cab switch, runs the FFTW proxy with ImpactB
//! probes alongside, and turns the probe latencies into the paper's
//! queue-utilization metric.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use active_netprobe::core::{
    calibrate, idle_profile, impact_profile_of_app, ExperimentConfig, MuPolicy,
};
use active_netprobe::workloads::AppKind;

fn main() {
    // The paper's experimental setup: 18 nodes on one QLogic-like switch.
    let cfg = ExperimentConfig::cab();

    // Step 1 — calibrate the queue model on an idle switch (§IV-B):
    // 1/µ is the minimum idle probe latency, Var(S) the idle variance.
    let idle = idle_profile(&cfg).expect("idle profile");
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");
    println!(
        "idle switch: mean probe latency {:.2}us (min {:.2}us, sd {:.2}us)",
        idle.mean(),
        idle.min(),
        idle.std_dev()
    );
    println!(
        "queue calibration: mu = {:.3} packets/us, Var(S) = {:.3} us^2",
        calib.mu, calib.var_s
    );

    // Step 2 — run an application with probes alongside (an "impact
    // experiment", §III-A) and summarize the probe latencies.
    let app = AppKind::Fftw;
    let profile = impact_profile_of_app(&cfg, app).expect("impact profile");
    println!(
        "\nwhile {} runs: mean probe latency {:.2}us (sd {:.2}us, n={})",
        app.name(),
        profile.mean(),
        profile.std_dev(),
        profile.count()
    );

    // Step 3 — invert Pollaczek–Khinchine: mean latency → arrival rate →
    // switch utilization (the paper's eq. 3).
    let util = calib.utilization(&profile);
    println!(
        "{} occupies about {:.0}% of the switch queue capability",
        app.name(),
        util * 100.0
    );
    println!(
        "(the idle baseline reads {:.0}%, so the application adds ~{:.0} points)",
        calib.utilization(&idle) * 100.0,
        (util - calib.utilization(&idle)) * 100.0
    );
}
