//! Switch tomography: does the probe-based utilization estimate track the
//! truth?
//!
//! Unlike real hardware, the simulator exposes ground truth — the routing
//! stage's actual busy fraction. This example injects a ladder of
//! synthetic loads, estimates utilization from probe latencies alone (the
//! paper's method), and prints it next to the true server utilization and
//! back-pressure telemetry. On real switches the right-hand columns do not
//! exist; that is precisely why the paper needs the probes.
//!
//! ```text
//! cargo run --release --example switch_tomography
//! ```

use active_netprobe::core::{Calibration, LatencyProfile, MuPolicy, TimedSeries};
use active_netprobe::simmpi::{Looping, Op, Program, Src, World};
use active_netprobe::simnet::{NodeId, SimDuration, SimTime, SwitchConfig};
use active_netprobe::workloads::{build_impactb, ImpactConfig};

/// Runs probes next to a ring workload that sends `bytes` every `gap`.
fn probe_under_load(bytes: u64, gap: SimDuration) -> (LatencyProfile, f64, u64) {
    let switch = SwitchConfig::cab();
    let mut world = World::new(switch);
    let probe_cfg = ImpactConfig {
        period: SimDuration::from_micros(500),
        ..ImpactConfig::default()
    };
    let (probes, sink) = build_impactb(&probe_cfg, 18);
    world.add_job("impactb", probes);

    if bytes > 0 {
        let noisy: Vec<(Box<dyn Program>, NodeId)> = (0..18u32)
            .map(|n| {
                let body = vec![
                    Op::Isend {
                        dst: (n + 1) % 18,
                        bytes,
                        tag: 1,
                    },
                    Op::Irecv {
                        src: Src::Any,
                        tag: 1,
                    },
                    Op::WaitAll,
                    Op::Sleep(gap),
                ];
                (Box::new(Looping::new(body)) as Box<dyn Program>, NodeId(n))
            })
            .collect();
        world.add_job("synthetic-load", noisy);
    }

    world.run_until(SimTime::from_millis(150));
    let samples = sink.borrow();
    let profile = TimedSeries::with_warmup(samples.clone(), 0.1).profile();
    let true_util = world.fabric().switch_stats().utilization(world.now());
    let stalls = world.fabric().stats().backpressure_stalls;
    (profile, true_util, stalls)
}

fn main() {
    println!("Active tomography of the simulated Cab switch\n");

    // Calibrate once on the idle fabric.
    let (idle, _, _) = probe_under_load(0, SimDuration::ZERO);
    let calib = Calibration::from_idle_profile(&idle, MuPolicy::MinLatency).unwrap();
    println!(
        "calibration: mu={:.3}/us Var(S)={:.3}us^2 (idle mean {:.2}us)\n",
        calib.mu,
        calib.var_s,
        idle.mean()
    );

    println!(
        "{:>9} {:>9} | {:>10} {:>10} | {:>12} {:>8}",
        "msg", "gap", "probe mean", "inferred", "true busy", "stalls"
    );
    let ladder: [(u64, u64); 6] = [
        (0, 0),
        (16 << 10, 2_000_000),
        (64 << 10, 1_000_000),
        (256 << 10, 500_000),
        (512 << 10, 100_000),
        (1 << 20, 10_000),
    ];
    for (bytes, gap_ns) in ladder {
        let (p, true_util, stalls) = probe_under_load(bytes, SimDuration::from_nanos(gap_ns));
        println!(
            "{:>8}K {:>8}u | {:>8.2}us {:>9.1}% | {:>11.1}% {:>8}",
            bytes >> 10,
            gap_ns / 1_000,
            p.mean(),
            calib.utilization(&p) * 100.0,
            true_util * 100.0,
            stalls
        );
    }
    println!();
    println!("The inferred column is computed from probe latencies alone via");
    println!("the Pollaczek-Khinchine inversion; it must rise monotonically");
    println!("with the true load even though the absolute scales differ (the");
    println!("paper's metric is a consistent indicator, not a gauge).");
}
