//! Compression sweep: how does an application perform on *less capable*
//! switches?
//!
//! The paper's §III-B insight ("performance relativity") is that a switch
//! partially consumed by an interfering workload looks, to an application,
//! like a smaller switch. This example sweeps the MILC proxy against a
//! ladder of CompressionB configurations and prints the degradation curve
//! — one application's slice of Fig. 7.
//!
//! ```text
//! cargo run --release --example compression_sweep
//! ```

use active_netprobe::core::{
    calibrate, degradation_percent, impact_profile_of_compression, runtime_under_compression,
    solo_runtime, ExperimentConfig, MuPolicy,
};
use active_netprobe::workloads::{AppKind, CompressionConfig};

fn main() {
    let cfg = ExperimentConfig::cab();
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");
    let app = AppKind::Milc;

    let solo = solo_runtime(&cfg, app).expect("solo runtime");
    println!("{} solo runtime: {}", app.name(), solo);
    println!();
    println!("{:<18} {:>8} {:>10}", "CompressionB", "util", "degradation");

    // A ladder from nearly-idle to saturating interference.
    let ladder = [
        CompressionConfig::new(1, 25_000_000, 1),
        CompressionConfig::new(7, 25_000_000, 10),
        CompressionConfig::new(7, 2_500_000, 10),
        CompressionConfig::new(14, 250_000, 1),
        CompressionConfig::new(17, 250_000, 10),
        CompressionConfig::new(17, 25_000, 10),
    ];
    for comp in &ladder {
        let profile = impact_profile_of_compression(&cfg, comp).expect("impact");
        let util = calib.utilization(&profile);
        let loaded = runtime_under_compression(&cfg, app, comp).expect("loaded runtime");
        let degr = degradation_percent(solo, loaded);
        println!(
            "{:<18} {:>7.1}% {:>+9.1}%",
            comp.label(),
            util * 100.0,
            degr
        );
    }
    println!();
    println!(
        "Reading the curve: to estimate {}'s performance on a switch",
        app.name()
    );
    println!("with only (100-U)% of Cab's capability, look up the row whose");
    println!("utilization is U — that is the paper's performance-relativity move.");
}
